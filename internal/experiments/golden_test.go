package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The experiment pipeline is advertised as bit-for-bit reproducible: fixed
// seeds, no map-order leaks, no wall-clock dependence. These golden tests
// hold it to that. Regenerate with:
//
//	go test ./internal/experiments -run TestGolden -update

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFig5(t *testing.T) {
	res, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5.txt", b.Bytes())
}

func TestGoldenFig6(t *testing.T) {
	res, err := Fig6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6.txt", b.Bytes())
}

func TestGoldenFig7(t *testing.T) {
	res, err := Fig7(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7.txt", b.Bytes())
}

func TestGoldenFig8(t *testing.T) {
	res, err := Fig8(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8.txt", b.Bytes())
}

func TestGoldenTable1(t *testing.T) {
	rows, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderTable1(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.txt", b.Bytes())
}

func TestGoldenAStar(t *testing.T) {
	rows, err := AStarStudy(AStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderAStar(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "astar.txt", b.Bytes())
}

// TestGoldenAStarBnB extends the feasibility study past the classic memory
// wall: branch-and-bound rows at every size up to 12 unique functions. The
// default study (and its golden file) is untouched — BnB rows only appear
// when BnBMaxFuncs is set.
func TestGoldenAStarBnB(t *testing.T) {
	if testing.Short() {
		t.Skip("the 10-12 function searches take seconds")
	}
	rows, err := AStarStudy(AStarOptions{BnBMaxFuncs: 12})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderSearchFrontier(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "astar_bnb.txt", b.Bytes())
}

// TestGoldenAStarExact is the oracle frontier: exact rows out to fourteen
// unique functions next to the bnb rows. Twelve is certified under the
// documented frontierExactMaxNodes budget, thirteen exposes the current
// wall, fourteen certifies again — the frontier is instance-shaped, not
// monotone in size. The in-job cross-checks of aStarSize double as the
// oracle-agreement gate for every completed A*/IDA*/bnb row.
func TestGoldenAStarExact(t *testing.T) {
	if testing.Short() {
		t.Skip("the twelve-plus function terminal probes take tens of seconds")
	}
	rows, err := AStarStudy(AStarOptions{BnBMaxFuncs: 12, ExactMaxFuncs: 14})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderSearchFrontier(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "astar_exact.txt", b.Bytes())
}

func TestGoldenPriority(t *testing.T) {
	rows, err := PriorityStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	sat, err := SaturationStudy()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderPriority("priority", append(rows, sat...), &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "priority.txt", b.Bytes())
}

func TestGoldenPredict(t *testing.T) {
	rows, err := PredictStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderPredict(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "predict.txt", b.Bytes())
}

func TestGoldenInterp(t *testing.T) {
	rows, err := InterpreterStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderInterp(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "interp.txt", b.Bytes())
}

func TestGoldenInline(t *testing.T) {
	rows, err := InlineStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderInline(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "inline.txt", b.Bytes())
}

func TestGoldenVariation(t *testing.T) {
	rows, err := VariationStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderVariation(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "variation.txt", b.Bytes())
}

func TestGoldenMT(t *testing.T) {
	rows, err := MTStudy(Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := RenderMT(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "mt.txt", b.Bytes())
}

// TestGoldenOnline pins the regret-vs-window figure: the streaming corpus,
// the window ladder, and every scheduler's regret against offline IAR. The
// unbounded IAR rows must show exactly 0.00 regret — the backbone
// invariant surfacing in the figure itself.
func TestGoldenOnline(t *testing.T) {
	rows, err := OnlineStudy(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scheduler == "iar" && r.Window == 0 && r.Regret != 0 {
			t.Errorf("%s: unbounded online IAR has regret %.4f%%, want exactly 0", r.Spec, r.Regret)
		}
	}
	var b bytes.Buffer
	if err := RenderOnline(rows, &b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "online.txt", b.Bytes())
}
