package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// InterpRow is one benchmark's outcome in the interpreter-tier study.
type InterpRow struct {
	Benchmark string
	// CompiledIAR is IAR's normalized make-span on the plain 4-level
	// profile; InterpIAR adds the interpretation tier (5 levels); BaseIAR
	// is the interpreter setting with IAR's initial schedule starting at
	// the baseline compiler (LowLevel=1) instead of the interpreter — the
	// "extra care" §8 calls for.
	CompiledIAR, InterpIAR, BaseIAR float64
	// DefaultCompiled/DefaultInterp are the Jikes scheme's normalized
	// make-spans in the two settings.
	DefaultCompiled, DefaultInterp float64
}

// InterpreterStudy implements §8's interpreter note: "if we treat
// interpretation as the lowest level compilation ... the analysis and
// algorithms discussed in this paper can still be applied". The study adds
// an interpretation tier (one-tick 'compilation', InterpSlowdown-times
// slower execution) to every workload and re-runs IAR and the default
// scheme. The expected shape: both remain well-behaved — IAR near its
// bound, the default's gap similar — because interpretation merely gives
// first calls a cheaper entry point.
func InterpreterStudy(opts Options) ([]InterpRow, error) {
	const slowdown = 6 // interpreters run several-fold slower than baseline-compiled code
	return perBench(opts, "interpreter tier", func(b dacapo.Benchmark, _ runner.Ctx) (InterpRow, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return InterpRow{}, err
		}
		row := InterpRow{Benchmark: w.Bench.Name}
		// Plain setting.
		model := w.DefaultModel()
		row.CompiledIAR, row.DefaultCompiled, err = runIARAndDefault(
			w.Trace, w.Profile, model, w.Bench.SamplePeriod, opts.IARK)
		if err != nil {
			return InterpRow{}, err
		}
		// Interpreter tier added.
		pi, err := w.Profile.WithInterpreter(slowdown)
		if err != nil {
			return InterpRow{}, err
		}
		modelI := profile.NewEstimated(pi, profile.DefaultEstimatedConfig(int64(len(w.Bench.Name))*31+7))
		row.InterpIAR, row.DefaultInterp, err = runIARAndDefault(
			w.Trace, pi, modelI, w.Bench.SamplePeriod, opts.IARK)
		if err != nil {
			return InterpRow{}, err
		}
		// The §8 fix: initialize at the baseline compiler, not the
		// interpreter.
		lbI := float64(core.ModelLowerBound(w.Trace, pi, modelI))
		baseSched, err := core.IAR(w.Trace, pi, core.IAROptions{Model: modelI, K: opts.IARK, LowLevel: 1})
		if err != nil {
			return InterpRow{}, err
		}
		baseRes, err := sim.Run(w.Trace, pi, baseSched, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			return InterpRow{}, err
		}
		row.BaseIAR = float64(baseRes.MakeSpan) / lbI
		return row, nil
	})
}

// runIARAndDefault evaluates IAR (replay) and the Jikes policy on one
// workload, both normalized by the model lower bound.
func runIARAndDefault(tr *trace.Trace, p *profile.Profile, model profile.CostModel, samplePeriod, iarK int64) (iar, def float64, err error) {
	lb := float64(core.ModelLowerBound(tr, p, model))
	sched, err := core.IAR(tr, p, core.IAROptions{Model: model, K: iarK})
	if err != nil {
		return 0, 0, err
	}
	iarRes, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		return 0, 0, err
	}
	pol, err := policy.NewJikes(model, p.NumFuncs(), samplePeriod)
	if err != nil {
		return 0, 0, err
	}
	defRes, err := sim.RunPolicy(tr, p, pol, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		return 0, 0, err
	}
	return float64(iarRes.MakeSpan) / lb, float64(defRes.MakeSpan) / lb, nil
}

// RenderInterp writes the interpreter-tier study.
func RenderInterp(rows []InterpRow, w io.Writer) error {
	t := report.NewTable("Interpreter tier study (§8): 4 compiled levels vs interpretation + 4 levels",
		"benchmark", "IAR", "IAR+interp", "IAR+interp/base-init", "default", "default+interp")
	var a, b, e, c, d []float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, report.F3(r.CompiledIAR), report.F3(r.InterpIAR), report.F3(r.BaseIAR),
			report.F3(r.DefaultCompiled), report.F3(r.DefaultInterp))
		a = append(a, r.CompiledIAR)
		b = append(b, r.InterpIAR)
		e = append(e, r.BaseIAR)
		c = append(c, r.DefaultCompiled)
		d = append(d, r.DefaultInterp)
	}
	t.AddRow("average", report.F3(report.Mean(a)), report.F3(report.Mean(b)), report.F3(report.Mean(e)),
		report.F3(report.Mean(c)), report.F3(report.Mean(d)))
	return t.Render(w)
}

// InlineRow is the inlining study's outcome on one synthetic program.
type InlineRow struct {
	Label string
	// Calls is the collected trace length; IAR/Default are normalized
	// make-spans.
	Calls        int
	IAR, Default float64
}

// InlineStudy implements §8's inlining note on the call-graph substrate:
// inline the hottest leaf functions, re-collect the trace (shorter; callers
// bigger and longer-running), re-derive timing from the new sizes, and
// re-run the schedulers. Scheduling keeps working on the transformed
// program; what changes is the input, exactly as §8 warns a static
// profile-based deployment must expect.
func InlineStudy(victims int) ([]InlineRow, error) {
	prog, err := program.Generate(program.GenConfig{
		Funcs: 300, Layers: 5, FanOut: 3, LoopMean: 5, BranchProb: 0.65, Seed: 77,
	})
	if err != nil {
		return nil, err
	}
	if victims <= 0 {
		victims = 12
	}
	inlined, _, err := program.Inline(prog, program.HottestLeaves(prog, victims))
	if err != nil {
		return nil, err
	}

	variants := []struct {
		label string
		p     *program.Program
	}{{"original", prog}, {fmt.Sprintf("inlined top %d leaves", victims), inlined}}
	jobs := make([]runner.Job[InlineRow], len(variants))
	for i, v := range variants {
		v := v
		jobs[i] = runner.Job[InlineRow]{
			Key: runner.Key{Experiment: "inline study", Detail: fmt.Sprintf("%s victims=%d", v.label, victims)},
			Fn: func(_ runner.Ctx) (InlineRow, error) {
				tr, err := program.Collect(v.p, program.CollectOptions{MaxCalls: 200000, Seed: 78})
				if err != nil {
					return InlineRow{}, err
				}
				prof, err := profile.SynthesizeWithSizes(v.p.Sizes(), profile.DefaultTiming(4, 79))
				if err != nil {
					return InlineRow{}, err
				}
				model := profile.NewEstimated(prof, profile.DefaultEstimatedConfig(80))
				iar, def, err := runIARAndDefault(tr, prof, model, 300000, 0)
				if err != nil {
					return InlineRow{}, err
				}
				return InlineRow{Label: v.label, Calls: tr.Len(), IAR: iar, Default: def}, nil
			},
		}
	}
	return runner.Map(runner.Shared(), jobs)
}

// RenderInline writes the inlining study.
func RenderInline(rows []InlineRow, w io.Writer) error {
	t := report.NewTable("Inlining study (§8): scheduling before and after leaf inlining",
		"program", "trace calls", "IAR", "default")
	for _, r := range rows {
		t.AddRow(r.Label, fmt.Sprintf("%d", r.Calls), report.F3(r.IAR), report.F3(r.Default))
	}
	return t.Render(w)
}
