package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Table2Row reports the IAR algorithm's own running time on one benchmark —
// the overhead study of Table 2. The algorithm runs on the host machine; the
// "whole program time" it is compared against is the simulated IAR make-span
// read as wall time at one tick per microsecond, the same convention the
// tick unit is designed around.
type Table2Row struct {
	Benchmark string
	// IARSeconds is the measured wall time of one IAR invocation.
	IARSeconds float64
	// ProgramSeconds is the simulated make-span in seconds (ticks / 1e6).
	ProgramSeconds float64
	// Percent is IARSeconds / ProgramSeconds * 100.
	Percent float64
}

// Table2 reproduces Table 2: the IAR algorithm's time overhead relative to
// program execution time. The paper reports sub-1% overheads for most
// benchmarks; the linear-time algorithm should land in the same regime here.
func Table2(opts Options) ([]Table2Row, error) {
	bs, err := opts.benchmarks()
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, 0, len(bs))
	for _, b := range bs {
		w, err := b.Load(opts.scale())
		if err != nil {
			return nil, err
		}
		model := w.DefaultModel()

		// Warm once (page in code paths), then time a small number of runs.
		sched, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK})
		if err != nil {
			return nil, err
		}
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK}); err != nil {
				return nil, err
			}
		}
		iarSec := time.Since(start).Seconds() / reps

		res, err := sim.Run(w.Trace, w.Profile, sched, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			return nil, err
		}
		progSec := float64(res.MakeSpan) / 1e6
		row := Table2Row{
			Benchmark:      b.Name,
			IARSeconds:     iarSec,
			ProgramSeconds: progSec,
		}
		if progSec > 0 {
			row.Percent = iarSec / progSec * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}
