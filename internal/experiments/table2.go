package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Table2Row reports the IAR algorithm's own running time on one benchmark —
// the overhead study of Table 2. The algorithm runs on the host machine; the
// "whole program time" it is compared against is the simulated IAR make-span
// read as wall time at one tick per microsecond, the same convention the
// tick unit is designed around.
type Table2Row struct {
	Benchmark string
	// IARSeconds is the measured wall time of one IAR invocation.
	IARSeconds float64
	// ProgramSeconds is the simulated make-span in seconds (ticks / 1e6).
	ProgramSeconds float64
	// Percent is IARSeconds / ProgramSeconds * 100.
	Percent float64
}

// Table2 reproduces Table 2: the IAR algorithm's time overhead relative to
// program execution time. The paper reports sub-1% overheads for most
// benchmarks; the linear-time algorithm should land in the same regime here.
//
// Unlike the other harnesses, Table 2 measures host wall time, so when the
// runner fans the benchmarks out its timings reflect concurrent load; the
// reported percentages stay indicative, not golden-testable.
func Table2(opts Options) ([]Table2Row, error) {
	return perBench(opts, "Table 2", func(b dacapo.Benchmark, _ runner.Ctx) (Table2Row, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return Table2Row{}, err
		}
		model := w.DefaultModel()

		// Warm once (page in code paths; the owned copy survives the timed
		// arena runs below), then time warm arena-backed runs — the
		// allocation-free fast path a runtime replanner would sit on.
		sched, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK})
		if err != nil {
			return Table2Row{}, err
		}
		arena := core.NewIARArena()
		if _, err := arena.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK}); err != nil {
			return Table2Row{}, err
		}
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := arena.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK}); err != nil {
				return Table2Row{}, err
			}
		}
		iarSec := time.Since(start).Seconds() / reps

		res, err := sim.Run(w.Trace, w.Profile, sched, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			return Table2Row{}, err
		}
		progSec := float64(res.MakeSpan) / 1e6
		row := Table2Row{
			Benchmark:      b.Name,
			IARSeconds:     iarSec,
			ProgramSeconds: progSec,
		}
		if progSec > 0 {
			row.Percent = iarSec / progSec * 100
		}
		return row, nil
	})
}
