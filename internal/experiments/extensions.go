package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file holds the extension studies the paper motivates but does not
// evaluate itself:
//
//   - PriorityStudy implements the §7 insight that first-time compilations
//     should outrank recompilations in the JIT's queue, and measures how
//     much of the default scheme's gap that one-line policy change recovers.
//   - VariationStudy implements the §8 discussion of per-call execution-time
//     variation, measuring how schedules computed from per-call *averages*
//     hold up when replayed against varying realizations.
//   - KSweep quantifies §5.1's claim that IAR is insensitive to the K
//     constant anywhere in [3,10].
//   - PeriodSweep exposes the sampling-period sensitivity of the default
//     scheme that underlies Fig. 5's gap.

// PriorityRow is one workload's outcome in the queue-discipline study.
type PriorityRow struct {
	Benchmark string
	// FIFO and Priority are the default (Jikes) scheme's normalized
	// make-spans under the two queue disciplines.
	FIFO, Priority float64
	// MaxPending is the deepest the compile queue ever got (FIFO run);
	// FirstBehind counts first-compilation requests that arrived behind a
	// waiting recompilation — the situations the §7 discipline can improve.
	MaxPending  int
	FirstBehind int
	// FIFOBubble and PriorityBubble are total execution-stall ticks under
	// each discipline; the discipline's direct effect is to shrink them.
	FIFOBubble, PriorityBubble int64
}

// PriorityStudy measures the §7 insight — "the first-time compilation of a
// method should generally get a higher priority than recompilations of
// other methods" — by running the (organizer-batched) default Jikes scheme
// with a FIFO compile queue and with a first-compile-first queue.
//
// Two reproduction findings temper the insight. First, with per-sample
// promotion decisions the compile queue *self-regulates*: the Jikes
// cost-benefit threshold spaces recompilation requests at intervals
// comparable to the compilations themselves (both scale with compile cost),
// and a single blocked execution thread stops generating requests, so
// first-compilations essentially never wait behind queued recompilations.
// Second, once the organizer batches decisions and pressure exists, the
// discipline cuts blocking but *delays hot recompilations*, so its net
// effect on trace-driven workloads is modest and benchmark-dependent (the
// paper's own wording is "generally"). SaturationStudy constructs the burst
// regime where the win is clear.
func PriorityStudy(opts Options) ([]PriorityRow, error) {
	return perBench(opts, "queue discipline", func(b dacapo.Benchmark, _ runner.Ctx) (PriorityRow, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return PriorityRow{}, err
		}
		model := w.DefaultModel()
		lb := float64(core.ModelLowerBound(w.Trace, w.Profile, model))
		run := func(d sim.QueueDiscipline) (*sim.Result, error) {
			pol, err := policy.NewJikesOrganizer(model, w.Profile.NumFuncs(),
				w.Bench.SamplePeriod, 4*w.Bench.SamplePeriod)
			if err != nil {
				return nil, err
			}
			return sim.RunPolicy(w.Trace, w.Profile, pol,
				sim.Config{CompileWorkers: 1, Discipline: d}, sim.Options{})
		}
		fifo, err := run(sim.FIFO)
		if err != nil {
			return PriorityRow{}, err
		}
		prio, err := run(sim.FirstCompileFirst)
		if err != nil {
			return PriorityRow{}, err
		}
		return PriorityRow{
			Benchmark:      w.Bench.Name,
			FIFO:           float64(fifo.MakeSpan) / lb,
			Priority:       float64(prio.MakeSpan) / lb,
			MaxPending:     fifo.MaxPending,
			FirstBehind:    fifo.FirstBehindRecompiles,
			FIFOBubble:     fifo.TotalBubble,
			PriorityBubble: prio.TotalBubble,
		}, nil
	})
}

// SaturationStudy pushes toward the regime where the §7 discipline should
// matter: a compile-heavy configuration (compilation costs scaled up, as on
// a slow mobile core — the paper's motivating platform) running a
// flat-hotness workload whose functions cross the promotion threshold
// together, so the organizer emits recompilation bursts while new code
// keeps arriving. Even here the measured benefit is small: a blocked
// single-threaded executor generates no further requests, draining the very
// contention the discipline needs (the bubble totals shrink, the make-span
// barely moves). The conclusion of this reproduction is that the §7 insight
// presupposes request sources beyond one execution thread — more
// application threads, or eager batch loading.
func SaturationStudy() ([]PriorityRow, error) {
	organizers := []int64{200000, 800000}
	jobs := make([]runner.Job[PriorityRow], len(organizers))
	for i, organizer := range organizers {
		organizer := organizer
		jobs[i] = runner.Job[PriorityRow]{
			Key: runner.Key{Experiment: "saturation", Detail: fmt.Sprintf("organizer=%d", organizer)},
			Fn: func(_ runner.Ctx) (PriorityRow, error) {
				tr, p, err := saturationWorkload()
				if err != nil {
					return PriorityRow{}, err
				}
				model := profile.NewOracle(p)
				lb := float64(core.ModelLowerBound(tr, p, model))
				row := PriorityRow{Benchmark: fmt.Sprintf("flat-hot/organizer=%dk", organizer/1000)}
				for _, d := range []sim.QueueDiscipline{sim.FIFO, sim.FirstCompileFirst} {
					pol, err := policy.NewJikesOrganizer(model, p.NumFuncs(), 3000, organizer)
					if err != nil {
						return PriorityRow{}, err
					}
					res, err := sim.RunPolicy(tr, p, pol, sim.Config{CompileWorkers: 1, Discipline: d}, sim.Options{})
					if err != nil {
						return PriorityRow{}, err
					}
					if d == sim.FIFO {
						row.FIFO = float64(res.MakeSpan) / lb
						row.MaxPending = res.MaxPending
						row.FirstBehind = res.FirstBehindRecompiles
						row.FIFOBubble = res.TotalBubble
					} else {
						row.Priority = float64(res.MakeSpan) / lb
						row.PriorityBubble = res.TotalBubble
					}
				}
				return row, nil
			},
		}
	}
	return runner.Map(runner.Shared(), jobs)
}

// saturationWorkload builds the flat-hotness, compile-heavy instance used
// by SaturationStudy: 24 *identical* hot functions — same size, same
// per-level times, equal call shares, so their sample counts cross the
// promotion threshold in the same organizer window and the recompilations
// arrive as one burst — plus a steady drip of new cold functions whose
// first compilations land behind that burst. All compilation costs are
// scaled 8x (a slow-to-compile configuration).
func saturationWorkload() (*trace.Trace, *profile.Profile, error) {
	const hot, cold, calls, intro = 24, 4000, 100000, 25
	seq := make([]trace.FuncID, 0, calls)
	nextCold := trace.FuncID(hot)
	for i := 0; i < calls; i++ {
		if i%intro == intro-1 && int(nextCold) < hot+cold {
			// A newly loaded function immediately runs a few times.
			for k := 0; k < 3 && len(seq) < calls; k++ {
				seq = append(seq, nextCold)
			}
			nextCold++
		} else {
			seq = append(seq, trace.FuncID(i%hot))
		}
	}
	p, err := profile.Synthesize(hot+cold, profile.DefaultTiming(4, 77))
	if err != nil {
		return nil, nil, err
	}
	for i := range p.Funcs {
		for l := range p.Funcs[i].Compile {
			p.Funcs[i].Compile[l] *= 8
		}
	}
	// Clone one hot function's timings across the hot set.
	proto := p.Funcs[0]
	for i := 1; i < hot; i++ {
		p.Funcs[i].Size = proto.Size
		copy(p.Funcs[i].Compile, proto.Compile)
		copy(p.Funcs[i].Exec, proto.Exec)
	}
	return trace.New("flat-hot", seq), p, nil
}

// RenderPriority writes a queue-discipline study (PriorityStudy or
// SaturationStudy rows).
func RenderPriority(title string, rows []PriorityRow, w io.Writer) error {
	t := report.NewTable(title,
		"workload", "FIFO", "first-compile-first", "max queue", "firsts behind recompiles")
	var f, p []float64
	for _, r := range rows {
		t.AddRow(r.Benchmark, report.F3(r.FIFO), report.F3(r.Priority),
			fmt.Sprintf("%d", r.MaxPending), fmt.Sprintf("%d", r.FirstBehind))
		f = append(f, r.FIFO)
		p = append(p, r.Priority)
	}
	t.AddRow("average", report.F3(report.Mean(f)), report.F3(report.Mean(p)), "", "")
	return t.Render(w)
}

// VariationRow is one benchmark's outcome in the execution-time-variation
// study: the IAR schedule (computed from averages) replayed against varying
// per-call times, normalized by the lower bound of the same realization.
type VariationRow struct {
	Benchmark string
	// ByMagnitude maps the variation magnitude to IAR's normalized
	// make-span under that realization.
	ByMagnitude map[float64]float64
}

// VariationMagnitudes are the per-call variation levels the study sweeps:
// up to ±60% per call.
var VariationMagnitudes = []float64{0, 0.2, 0.4, 0.6}

// VariationStudy replays average-based IAR schedules against per-call
// execution-time variation (§8). The paper argues the major conclusions
// survive such variation; the study quantifies it: the normalized make-span
// should degrade only mildly with the variation magnitude.
func VariationStudy(opts Options) ([]VariationRow, error) {
	return perBench(opts, "execution-time variation", func(b dacapo.Benchmark, _ runner.Ctx) (VariationRow, error) {
		w, err := b.Load(opts.scale())
		if err != nil {
			return VariationRow{}, err
		}
		model := w.DefaultModel()
		sched, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: opts.IARK})
		if err != nil {
			return VariationRow{}, err
		}
		levels := core.SingleCoreLevels(w.Trace, model)
		row := VariationRow{Benchmark: b.Name, ByMagnitude: make(map[float64]float64, len(VariationMagnitudes))}
		for _, m := range VariationMagnitudes {
			res, err := sim.Run(w.Trace, w.Profile, sched, sim.DefaultConfig(),
				sim.Options{ExecVariation: m, ExecVariationSeed: 99})
			if err != nil {
				return VariationRow{}, err
			}
			lb, err := core.VariedLowerBound(w.Trace, w.Profile, levels, m, 99)
			if err != nil {
				return VariationRow{}, err
			}
			row.ByMagnitude[m] = float64(res.MakeSpan) / float64(lb)
		}
		return row, nil
	})
}

// RenderVariation writes the execution-time-variation study.
func RenderVariation(rows []VariationRow, w io.Writer) error {
	cols := []string{"benchmark"}
	for _, m := range VariationMagnitudes {
		cols = append(cols, fmt.Sprintf("±%.0f%%", m*100))
	}
	t := report.NewTable("Execution-time variation (§8): average-based IAR vs varying realizations", cols...)
	sums := make([]float64, len(VariationMagnitudes))
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for i, m := range VariationMagnitudes {
			cells = append(cells, report.F3(r.ByMagnitude[m]))
			sums[i] += r.ByMagnitude[m]
		}
		t.AddRow(cells...)
	}
	if len(rows) > 0 {
		cells := []string{"average"}
		for i := range VariationMagnitudes {
			cells = append(cells, report.F3(sums[i]/float64(len(rows))))
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}

// SweepRow is one benchmark's normalized make-span across a swept parameter.
type SweepRow struct {
	Benchmark string
	ByValue   map[int64]float64
}

// KSweep runs IAR across K values and reports normalized make-spans — the
// paper's observation is that anything in [3,10] behaves alike.
func KSweep(opts Options, ks []int64) ([]SweepRow, error) {
	if len(ks) == 0 {
		ks = []int64{1, 3, 5, 8, 10, 20}
	}
	return perBenchDetail(opts, "K sweep", fmt.Sprintf("ks=%v", ks),
		func(b dacapo.Benchmark, _ runner.Ctx) (SweepRow, error) {
			w, err := b.Load(opts.scale())
			if err != nil {
				return SweepRow{}, err
			}
			model := w.DefaultModel()
			lb := float64(core.ModelLowerBound(w.Trace, w.Profile, model))
			row := SweepRow{Benchmark: b.Name, ByValue: make(map[int64]float64, len(ks))}
			// One arena serves the whole sweep: each schedule is simulated
			// before the next K's run recycles it.
			arena := core.NewIARArena()
			for _, k := range ks {
				sched, err := arena.IAR(w.Trace, w.Profile, core.IAROptions{Model: model, K: k})
				if err != nil {
					return SweepRow{}, err
				}
				res, err := sim.Run(w.Trace, w.Profile, sched, sim.DefaultConfig(), sim.Options{})
				if err != nil {
					return SweepRow{}, err
				}
				row.ByValue[k] = float64(res.MakeSpan) / lb
			}
			return row, nil
		})
}

// PeriodSweep runs the default Jikes scheme across sampling periods.
func PeriodSweep(opts Options, periods []int64) ([]SweepRow, error) {
	if len(periods) == 0 {
		periods = []int64{50000, 200000, 500000, 2000000}
	}
	return perBenchDetail(opts, "period sweep", fmt.Sprintf("periods=%v", periods),
		func(b dacapo.Benchmark, _ runner.Ctx) (SweepRow, error) {
			w, err := b.Load(opts.scale())
			if err != nil {
				return SweepRow{}, err
			}
			model := w.DefaultModel()
			lb := float64(core.ModelLowerBound(w.Trace, w.Profile, model))
			row := SweepRow{Benchmark: b.Name, ByValue: make(map[int64]float64, len(periods))}
			for _, s := range periods {
				pol, err := policy.NewJikes(model, w.Profile.NumFuncs(), s)
				if err != nil {
					return SweepRow{}, err
				}
				res, err := sim.RunPolicy(w.Trace, w.Profile, pol, sim.DefaultConfig(), sim.Options{})
				if err != nil {
					return SweepRow{}, err
				}
				row.ByValue[s] = float64(res.MakeSpan) / lb
			}
			return row, nil
		})
}

// RenderSweep writes a parameter sweep with the given title and column
// formatter.
func RenderSweep(title string, values []int64, format func(int64) string, rows []SweepRow, w io.Writer) error {
	cols := []string{"benchmark"}
	for _, v := range values {
		cols = append(cols, format(v))
	}
	t := report.NewTable(title, cols...)
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for _, v := range values {
			cells = append(cells, report.F3(r.ByValue[v]))
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}
