// TestIARArenaAllocGuard is the BenchmarkIAR budget wired into
// `make bench-guard`: on the three workloads the benchmark tracks, a warm
// arena-backed IAR run must stay at or under 50 allocations and at or under
// 650 KB allocated per run — ten times below the ~6.5 MB/op the pre-arena
// implementation committed to BENCH_core.json.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dacapo"
)

func TestIARArenaAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("loads full workloads")
	}
	const (
		maxAllocsPerRun = 50
		maxBytesPerRun  = 650 << 10
		reps            = 5
	)
	for _, name := range []string{"antlr", "eclipse", "lusearch"} {
		t.Run(name, func(t *testing.T) {
			bench, err := dacapo.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			w, err := bench.Load(1)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.IAROptions{Model: w.DefaultModel()}
			arena := core.NewIARArena()
			if _, err := arena.IAR(w.Trace, w.Profile, opts); err != nil {
				t.Fatal(err)
			}

			allocs := testing.AllocsPerRun(reps, func() {
				if _, err := arena.IAR(w.Trace, w.Profile, opts); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > maxAllocsPerRun {
				t.Errorf("warm arena IAR: %.0f allocs/run, budget %d", allocs, maxAllocsPerRun)
			}

			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < reps; i++ {
				if _, err := arena.IAR(w.Trace, w.Profile, opts); err != nil {
					t.Fatal(err)
				}
			}
			runtime.ReadMemStats(&after)
			bytesPerRun := (after.TotalAlloc - before.TotalAlloc) / reps
			if bytesPerRun > maxBytesPerRun {
				t.Errorf("warm arena IAR: %d B/run, budget %d", bytesPerRun, maxBytesPerRun)
			}
			t.Logf("%s: %.0f allocs/run, %d B/run (budgets %d, %d)",
				name, allocs, bytesPerRun, maxAllocsPerRun, maxBytesPerRun)
		})
	}
}
