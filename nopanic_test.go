package repro

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoPanicsOnInputReachablePaths enforces the hardening contract: the
// packages whose inputs can come from the outside world (simulator inputs,
// trace and profile files, generator configs) must report failures as
// errors, never panic. Test files are exempt — a test helper panicking on a
// statically wrong fixture is a test failure, not a crash a user can reach.
func TestNoPanicsOnInputReachablePaths(t *testing.T) {
	dirs := []string{
		filepath.Join("internal", "sim"),
		filepath.Join("internal", "trace"),
		filepath.Join("internal", "profile"),
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					pos := fset.Position(call.Pos())
					t.Errorf("%s:%d: panic() on an input-reachable path; return a structured error instead",
						pos.Filename, pos.Line)
				}
				return true
			})
		}
	}
}
