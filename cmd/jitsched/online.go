package main

// The online subcommands: gen-workload renders a streaming multi-tenant
// workload spec to trace/profile files, online replays one through the
// bounded-lookahead commitment harness and reports regret against offline
// IAR.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// loadSpec resolves the -spec/-preset pair: a spec file on disk, or one of
// the experiment suite's pinned streaming workloads by name.
func loadSpec(specPath, preset string) (*workload.Spec, error) {
	switch {
	case specPath != "" && preset != "":
		return nil, fmt.Errorf("pass -spec or -preset, not both")
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ReadSpec(f)
	case preset != "":
		for _, s := range experiments.OnlineSpecs() {
			if s.Name == preset {
				return s, nil
			}
		}
		var names []string
		for _, s := range experiments.OnlineSpecs() {
			names = append(names, s.Name)
		}
		return nil, fmt.Errorf("unknown preset %q (have %v)", preset, names)
	default:
		return nil, fmt.Errorf("pass -spec FILE or -preset NAME (try -example for a template)")
	}
}

func cmdGenWorkload(args []string) error {
	fs := flag.NewFlagSet("gen-workload", flag.ExitOnError)
	specPath := fs.String("spec", "", "workload spec file (JSON)")
	preset := fs.String("preset", "", "pinned experiment workload name (e.g. stream-mix)")
	example := fs.Bool("example", false, "print an example spec to stdout and exit")
	out := fs.String("o", "", "output trace file (default: <name>.trace)")
	format := fs.String("format", "binary", "binary or text")
	profileOut := fs.String("profile-out", "", "also write the combined timing profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		return workload.WriteSpec(os.Stdout, experiments.OnlineSpecs()[0])
	}
	s, err := loadSpec(*specPath, *preset)
	if err != nil {
		return err
	}
	tr, p, err := s.Render()
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = s.Name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = trace.WriteBinary(f, tr)
	case "text":
		err = trace.WriteText(f, tr)
	default:
		return fmt.Errorf("gen-workload: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d calls, %d functions, %d cohorts\n",
		path, tr.Len(), tr.UniqueFuncs(), len(s.Cohorts))
	if *profileOut != "" {
		pf, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := profile.WriteText(pf, p); err != nil {
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d functions, %d levels\n", *profileOut, p.NumFuncs(), p.Levels)
	}
	return nil
}

func cmdOnline(args []string) error {
	fs := flag.NewFlagSet("online", flag.ExitOnError)
	specPath := fs.String("spec", "", "workload spec file (JSON)")
	preset := fs.String("preset", "", "pinned experiment workload name (e.g. stream-mix)")
	schedName := fs.String("sched", "iar", "online scheduler: iar, v8, or sampled")
	window := fs.Int("window", 0, "lookahead window in calls (0 = unbounded)")
	workers := fs.Int("workers", 1, "compile workers")
	iarK := fs.Int64("k", 0, "IAR K constant (0 = paper default)")
	stats := fs.Bool("stats", false, "also print the scheduler's own cost accounting (replans, dirty-skips, time spent planning)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := loadSpec(*specPath, *preset)
	if err != nil {
		return err
	}
	tr, p, err := s.Render()
	if err != nil {
		return err
	}

	sched, err := experiments.NewOnlineScheduler(*schedName, p, *iarK)
	if err != nil {
		return err
	}
	cfg := sim.Config{CompileWorkers: *workers}
	res, err := online.Run(tr, p, sched, online.Options{Window: *window, Config: cfg})
	if err != nil {
		return err
	}

	offSched, err := core.IAR(tr, p, core.IAROptions{K: *iarK})
	if err != nil {
		return err
	}
	offRes, err := sim.Run(tr, p, offSched, cfg, sim.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("workload   %s (%d calls, %d functions)\n", s.Name, tr.Len(), tr.UniqueFuncs())
	fmt.Printf("scheduler  %s, window ", *schedName)
	if *window == 0 {
		fmt.Printf("unbounded")
	} else {
		fmt.Printf("%d", *window)
	}
	fmt.Printf(", %d compile worker(s)\n", *workers)
	fmt.Printf("make-span  %d (offline IAR %d)\n", res.Sim.MakeSpan, offRes.MakeSpan)
	fmt.Printf("regret     %.2f%%\n", online.Regret(res.Sim.MakeSpan, offRes.MakeSpan))
	fmt.Printf("bubbles    %d (%d ticks)\n", res.Sim.BubbleCount, res.Sim.TotalBubble)
	fmt.Printf("commits    %d (%d forced on-demand, %d dropped)\n",
		len(res.Schedule), res.Forced, res.Dropped)
	if iar, ok := sched.(*online.IAR); ok {
		fmt.Printf("replans    %d\n", iar.Replans())
	}
	if *stats {
		if sr, ok := sched.(online.StatsReporter); ok {
			st := sr.SchedStats()
			perCall := float64(0)
			if tr.Len() > 0 {
				perCall = float64(st.SchedNanos) / float64(tr.Len())
			}
			fmt.Printf("sched-cost %s planning across %d replans (%d dirty-skips), %.0f ns/call\n",
				time.Duration(st.SchedNanos).Round(time.Microsecond), st.Replans, st.DirtySkips, perCall)
		} else {
			fmt.Printf("sched-cost %s does not report scheduling cost\n", *schedName)
		}
	}
	return nil
}
