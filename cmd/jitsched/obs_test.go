package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdSimulateTimeline checks that -timeline renders the lane chart after
// the usual summary.
func TestCmdSimulateTimeline(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdSimulate([]string{"-bench", "fop", "-scale", "0.02", "-timeline"})
	})
	for _, want := range []string{"make-span:", "compile[0]", "execute", "legend: digits = optimization level"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdSimulateTraceOut validates the -trace-out file against the Chrome
// trace_event schema: a traceEvents array of complete ("X") and metadata
// ("M") events with integral microsecond timestamps.
func TestCmdSimulateTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	out := captureStdout(t, func() error {
		return cmdSimulate([]string{"-bench", "fop", "-scale", "0.02", "-algo", "jikes", "-trace-out", path})
	})
	if !strings.Contains(out, "wrote "+path) {
		t.Errorf("simulate did not report the trace file:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.DisplayTimeUnit)
	}
	var complete, meta int
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts == nil || *ev.Ts < 0 || ev.Dur < 0 || ev.Pid != 1 {
				t.Fatalf("malformed complete event %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete == 0 || meta == 0 {
		t.Errorf("trace has %d complete and %d metadata events, want both > 0", complete, meta)
	}
}

// TestCmdExpRejectsNegativePar pins the -par validation.
func TestCmdExpRejectsNegativePar(t *testing.T) {
	err := cmdExp([]string{"fig5", "-bench", "luindex", "-scale", "0.4", "-par", "-2"})
	if err == nil || !strings.Contains(err.Error(), "-par") {
		t.Errorf("negative -par not rejected: %v", err)
	}
}

// TestCmdExpObsAddr runs an experiment with the metrics endpoint enabled on
// an ephemeral port; the server must come up and shut down with the run.
func TestCmdExpObsAddr(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExp([]string{"fig5", "-bench", "luindex", "-scale", "0.4",
			"-obs-addr", "127.0.0.1:0", "-stats"})
	})
	if !strings.Contains(out, "luindex") {
		t.Errorf("experiment output missing benchmark:\n%s", out)
	}
	if err := cmdExp([]string{"fig5", "-bench", "luindex", "-scale", "0.4",
		"-obs-addr", "256.0.0.1:bad"}); err == nil {
		t.Error("unusable -obs-addr not rejected")
	}
}
