package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// cmdServe runs the scheduling service until SIGINT/SIGTERM, then drains:
// in-flight searches are cancelled, their requests answered, and the worker
// pool joined before the process exits.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (HOST:PORT; :0 picks a free port)")
	workers := fs.Int("workers", server.DefaultWorkers, "scheduling worker goroutines")
	queue := fs.Int("queue", server.DefaultQueueDepth, "max queued requests before 429")
	cache := fs.Int("cache", server.DefaultCacheSize, "LRU response-cache entries (negative disables)")
	timeout := fs.Duration("timeout", server.DefaultRequestTimeout, "default per-request timeout")
	maxTimeout := fs.Duration("max-timeout", server.DefaultMaxTimeout, "cap on a request's timeout_ms")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes before 413")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant sustained requests/second (0 disables admission control)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant token-bucket depth (default max(1, rate))")
	tenantInflight := fs.Int("tenant-inflight", 0, "per-tenant in-flight request quota (0 disables)")
	maxBatch := fs.Int("max-batch", server.DefaultMaxBatchItems, "max items per /schedule/batch request")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		Metrics:        obs.Default(),

		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxInFlight: *tenantInflight,
		MaxBatchItems:     *maxBatch,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	err := srv.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "jitsched serve: listening on http://%s (POST /schedule; metrics at /metrics)\n", a)
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "jitsched serve: drained and stopped after %v; %s\n",
		time.Since(start).Round(time.Millisecond), obs.Default().Snapshot())
	return nil
}
