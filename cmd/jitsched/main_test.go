package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestCmdExpSingleBenchmark(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExp([]string{"fig5", "-bench", "luindex", "-scale", "0.4"})
	})
	if !strings.Contains(out, "luindex") || !strings.Contains(out, "IAR algorithm") {
		t.Errorf("fig5 output missing expected content:\n%s", out)
	}
}

func TestCmdExpUnknown(t *testing.T) {
	if err := cmdExp([]string{"fig99"}); err == nil {
		t.Error("want error for unknown experiment")
	}
	if err := cmdExp(nil); err == nil {
		t.Error("want error for missing experiment")
	}
}

func TestCmdGenStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	out := captureStdout(t, func() error {
		return cmdGen([]string{"-bench", "lusearch", "-scale", "0.2", "-o", path})
	})
	if !strings.Contains(out, "wrote") {
		t.Errorf("gen output: %s", out)
	}
	out = captureStdout(t, func() error {
		return cmdStats([]string{"-i", path})
	})
	if !strings.Contains(out, "lusearch") {
		t.Errorf("stats output missing name:\n%s", out)
	}

	// Text format too.
	tpath := filepath.Join(dir, "t.txt")
	captureStdout(t, func() error {
		return cmdGen([]string{"-bench", "lusearch", "-scale", "0.1", "-o", tpath, "-format", "text"})
	})
	out = captureStdout(t, func() error {
		return cmdStats([]string{"-i", tpath})
	})
	if !strings.Contains(out, "lusearch") {
		t.Errorf("text stats output missing name:\n%s", out)
	}
}

func TestCmdGenErrors(t *testing.T) {
	if err := cmdGen([]string{"-bench", "nope"}); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if err := cmdGen([]string{"-bench", "antlr", "-format", "xml", "-o", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("want error for unknown format")
	}
	if err := cmdGen(nil); err == nil {
		t.Error("want error for missing -bench")
	}
	if err := cmdStats(nil); err == nil {
		t.Error("want error for missing -i")
	}
}

func TestCmdScheduleAndAdviceReplay(t *testing.T) {
	dir := t.TempDir()
	advice := filepath.Join(dir, "a.advice")
	out := captureStdout(t, func() error {
		return cmdSchedule([]string{"-bench", "luindex", "-scale", "0.3", "-advice", advice})
	})
	if !strings.Contains(out, "compilation events") {
		t.Errorf("schedule -advice output: %s", out)
	}
	out = captureStdout(t, func() error {
		return cmdSimulate([]string{"-bench", "luindex", "-scale", "0.3", "-advice", advice})
	})
	if !strings.Contains(out, "replayed advice") || !strings.Contains(out, "make-span") {
		t.Errorf("simulate -advice output: %s", out)
	}
}

func TestCmdSchedulePrints(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdSchedule([]string{"-bench", "luindex", "-scale", "0.2", "-n", "5"})
	})
	if !strings.Contains(out, "iar schedule for luindex") {
		t.Errorf("schedule output: %s", out)
	}
	if !strings.Contains(out, "more events") {
		t.Errorf("schedule output should truncate at -n: %s", out)
	}
}

func TestCmdSimulateVariants(t *testing.T) {
	for _, algo := range []string{"iar", "base", "opt", "jikes", "v8"} {
		out := captureStdout(t, func() error {
			return cmdSimulate([]string{"-bench", "luindex", "-scale", "0.2", "-algo", algo})
		})
		if !strings.Contains(out, "make-span") {
			t.Errorf("algo %s: output missing make-span:\n%s", algo, out)
		}
	}
	if err := cmdSimulate([]string{"-bench", "luindex", "-algo", "nope"}); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := cmdSimulate([]string{"-bench", "luindex", "-model", "nope"}); err == nil {
		t.Error("want error for unknown model")
	}
}

func TestCmdSimulateWorkers(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdSimulate([]string{"-bench", "luindex", "-scale", "0.2", "-workers", "4"})
	})
	if !strings.Contains(out, "make-span") {
		t.Errorf("workers output: %s", out)
	}
}

func TestCmdExpExtensions(t *testing.T) {
	for _, exp := range []string{"mt", "variation", "ksweep"} {
		out := captureStdout(t, func() error {
			return cmdExp([]string{exp, "-bench", "luindex"})
		})
		if !strings.Contains(out, "luindex") {
			t.Errorf("%s output missing benchmark:\n%s", exp, out)
		}
	}
}

func TestCmdSimulateCustomInput(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "c.trace")
	profPath := filepath.Join(dir, "c.profile")
	captureStdout(t, func() error {
		return cmdGen([]string{"-bench", "luindex", "-scale", "0.1", "-o", tracePath, "-profile-out", profPath})
	})
	out := captureStdout(t, func() error {
		return cmdSimulate([]string{"-trace", tracePath, "-profile", profPath, "-algo", "iar"})
	})
	if !strings.Contains(out, "make-span") {
		t.Errorf("custom input output:\n%s", out)
	}
	if err := cmdSimulate([]string{"-bench", "luindex", "-trace", tracePath, "-profile", profPath}); err == nil {
		t.Error("want error for mixing -bench with custom input")
	}
	if err := cmdSimulate([]string{"-trace", tracePath}); err == nil {
		t.Error("want error for missing -profile")
	}
}

func TestCmdExpPaperFigures(t *testing.T) {
	// Each remaining figure/table path, restricted to one small benchmark.
	for _, exp := range []string{"fig6", "fig7", "fig8", "table1", "table2", "periodsweep", "inline"} {
		args := []string{exp, "-bench", "luindex"}
		if exp == "inline" { // inline ignores -bench; runs its own program
			args = []string{exp}
		}
		out := captureStdout(t, func() error { return cmdExp(args) })
		if len(out) == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
}

func TestCmdExpMarkdown(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExp([]string{"fig7", "-bench", "luindex", "-md"})
	})
	if !strings.Contains(out, "|---|") {
		t.Errorf("markdown flag ignored:\n%s", out)
	}
}

func TestCmdScheduleAlgos(t *testing.T) {
	for _, algo := range []string{"base", "opt"} {
		out := captureStdout(t, func() error {
			return cmdSchedule([]string{"-bench", "luindex", "-scale", "0.2", "-algo", algo, "-n", "3"})
		})
		if !strings.Contains(out, algo+" schedule") {
			t.Errorf("algo %s output:\n%s", algo, out)
		}
	}
	if err := cmdSchedule([]string{"-bench", "luindex", "-algo", "bogus"}); err == nil {
		t.Error("want error for unknown algorithm")
	}
	if err := cmdSchedule([]string{"-bench", "luindex", "-model", "bogus"}); err == nil {
		t.Error("want error for unknown model")
	}
}

func TestCmdStatsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a trace at all\x00\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-i", path}); err == nil {
		t.Error("want error for garbage input")
	}
	if err := cmdStats([]string{"-i", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("want error for missing file")
	}
}

func TestCmdSimulateOracleModel(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdSimulate([]string{"-bench", "luindex", "-scale", "0.2", "-algo", "jikes", "-model", "oracle"})
	})
	if !strings.Contains(out, "make-span") {
		t.Errorf("oracle jikes output:\n%s", out)
	}
}

// TestCmdSimulateBnB drives the exact branch-and-bound search end to end
// through the CLI on a hand-sized custom workload: simulate reports the
// certified make-span and schedule prints the optimal event order.
func TestCmdSimulateBnB(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "tiny.trace")
	profPath := filepath.Join(dir, "tiny.profile")
	if err := os.WriteFile(tracePath, []byte(
		"# trace tiny\n0\n1\n0\n2\n0\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(profPath, []byte(
		"# jitsched profile v1 levels=2\n"+
			"0 f0 1 c:1,4 e:9,2\n"+
			"1 f1 1 c:2,5 e:7,3\n"+
			"2 f2 1 c:1,3 e:5,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdSimulate([]string{"-trace", tracePath, "-profile", profPath, "-algo", "bnb"})
	})
	if !strings.Contains(out, "make-span") {
		t.Errorf("bnb simulate output missing make-span:\n%s", out)
	}
	out = captureStdout(t, func() error {
		return cmdSchedule([]string{"-trace", tracePath, "-profile", profPath, "-algo", "bnb"})
	})
	if !strings.Contains(out, "bnb schedule") {
		t.Errorf("bnb schedule output:\n%s", out)
	}
}
