// Command jitsched reproduces the paper's experiments and exposes the
// library's building blocks from the command line.
//
// Usage:
//
//	jitsched exp fig5|fig6|fig7|fig8|table1|table2|astar|all [-scale F] [-bench NAME] [-md] [-par N] [-stats] [-obs-addr HOST:PORT]
//	jitsched exp bnb|priority|variation|predict|ksweep|periodsweep|interp|inline|scalesweep|mt|online
//	jitsched gen -bench NAME [-scale F] [-o FILE] [-format binary|text]
//	jitsched gen-workload -spec FILE|-preset NAME [-o FILE] [-format binary|text] [-profile-out FILE]
//	jitsched online -spec FILE|-preset NAME [-sched iar|v8|sampled] [-window N] [-workers N] [-k K]
//	jitsched stats -i FILE
//	jitsched schedule -bench NAME [-scale F] [-algo iar|base|opt|bnb] [-model default|oracle]
//	jitsched simulate -bench NAME [-scale F] [-algo ...] [-workers N] [-timeline] [-trace-out FILE]
//	jitsched serve [-addr HOST:PORT] [-workers N] [-queue N] [-cache N] [-timeout D] [-max-timeout D] [-max-body N]
//	              [-tenant-rate R] [-tenant-burst N] [-tenant-inflight N] [-max-batch N]
//	jitsched bench-serve [-preset NAME] [-requests N] [-concurrency N] [-o FILE] [-max-p99 D] [-min-hit-rate F]
//
// Experiments fan their independent simulations out over an internal/runner
// worker pool (-par bounds it; -par 1 forces the serial path). All
// experiments are deterministic regardless of the pool size: same flags,
// same numbers. -stats summarizes jobs run, cache hits, and wall time;
// -obs-addr additionally serves the live counters (plus expvar and pprof)
// over HTTP for the duration of the run.
//
// simulate can replay its recorded schedule as an ASCII timeline on stdout
// (-timeline) or as Chrome trace_event JSON (-trace-out FILE, loadable in
// chrome://tracing or ui.perfetto.dev). Recording is off unless requested
// and does not change any reported number.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "exp":
		err = cmdExp(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "gen-workload":
		err = cmdGenWorkload(os.Args[2:])
	case "online":
		err = cmdOnline(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "schedule":
		err = cmdSchedule(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench-serve":
		err = cmdBenchServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jitsched: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jitsched:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `jitsched - compilation scheduling for JIT runtimes (ASPLOS'14 reproduction)

commands:
  exp fig5|fig6|fig7|fig8|table1|table2|astar|all   reproduce a paper result
  exp bnb    extended search-feasibility frontier (branch-and-bound to 12 funcs)
  exp priority|variation|predict|ksweep|periodsweep|interp|inline|scalesweep|mt|online
             extension studies (§5.1, §5.3, §7, §8)
  gen        generate a synthetic DaCapo-like trace to a file
  gen-workload  render a streaming multi-tenant workload spec (-example for a template)
  online     replay a streaming workload through an online scheduler with
             bounded lookahead and report regret vs offline IAR
  stats      summarize a trace file
  schedule   print a compilation schedule for a workload
  simulate   simulate a schedule/policy and report the make-span
             (-timeline for an ASCII schedule, -trace-out for Chrome tracing)
  serve      run the scheduling service over HTTP (POST /schedule and
             /schedule/batch, with optional per-tenant admission control)
  bench-serve  replay a streaming workload preset as HTTP load against an
             in-process service and write BENCH_serve.json (self-gating via
             -max-p99 and -min-hit-rate)

run 'jitsched <command> -h' for flags.
`)
}

// expFlags returns the common experiment flag set.
func expFlags(name string) (*flag.FlagSet, *float64, *string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "trace length multiplier (1 = default scaled size)")
	bench := fs.String("bench", "", "restrict to one benchmark (default: all nine)")
	return fs, scale, bench
}
