package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCmdBenchServe runs a small replay end to end and checks the written
// record is a sane BENCH_serve.json document.
func TestCmdBenchServe(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	err := cmdBenchServe([]string{
		"-preset", "stream-bursty",
		"-requests", "300",
		"-concurrency", "8",
		"-o", out,
		"-max-p99", "30s", // generous: this asserts plumbing, not performance
		"-min-hit-rate", "0.5",
	})
	if err != nil {
		t.Fatalf("bench-serve: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchServeReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("undecodable report: %v", err)
	}
	if rep.Name != "bench-serve" || rep.Preset != "stream-bursty" {
		t.Errorf("report identifies as %q/%q", rep.Name, rep.Preset)
	}
	if rep.Status["200"] != 300 {
		t.Errorf("status counts %v, want 300 × 200", rep.Status)
	}
	if rep.Cache.Misses+rep.Cache.Coalesced+rep.Cache.Hits != 300 {
		t.Errorf("cache dispositions %+v do not sum to 300", rep.Cache)
	}
	if rep.Cache.Misses > rep.DistinctFingerprints {
		t.Errorf("%d misses for %d distinct fingerprints — single-flight or caching broke",
			rep.Cache.Misses, rep.DistinctFingerprints)
	}
	if rep.Latency.P99 <= 0 || rep.Latency.P50 > rep.Latency.P99 {
		t.Errorf("latency percentiles inconsistent: %+v", rep.Latency)
	}
	if len(rep.Tenants) != 2 { // stream-bursty has two cohorts
		t.Errorf("tenant breakdown %v, want both cohorts", rep.Tenants)
	}
	total := 0
	for _, tn := range rep.Tenants {
		total += tn.Requests
	}
	if total != 300 {
		t.Errorf("per-tenant requests sum to %d, want 300", total)
	}
}

// TestCmdBenchServeGateFailure: an unreachable hit-rate gate must fail the
// run after writing the record — the self-gating contract the CI target
// relies on.
func TestCmdBenchServeGateFailure(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	err := cmdBenchServe([]string{
		"-preset", "stream-mix",
		"-requests", "50",
		"-concurrency", "4",
		"-o", out,
		"-min-hit-rate", "1.1", // impossible by construction
	})
	if err == nil || !strings.Contains(err.Error(), "hit rate") {
		t.Fatalf("want a hit-rate gate failure, got %v", err)
	}
	if _, statErr := os.Stat(out); statErr != nil {
		t.Errorf("gate failure must still leave the record behind: %v", statErr)
	}
}

// TestCmdBenchServeUnknownPreset: a bad preset is rejected with the list.
func TestCmdBenchServeUnknownPreset(t *testing.T) {
	err := cmdBenchServe([]string{"-preset", "nope", "-requests", "1"})
	if err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("want unknown-preset error, got %v", err)
	}
}
