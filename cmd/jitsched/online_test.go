package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestCmdOnlinePreset(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdOnline([]string{"-preset", "stream-mix", "-sched", "iar", "-window", "1024"})
	})
	for _, want := range []string{"stream-mix", "window 1024", "regret", "replans"} {
		if !strings.Contains(out, want) {
			t.Errorf("online output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdOnlineStats(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdOnline([]string{"-preset", "stream-mix", "-sched", "iar", "-window", "1024", "-stats"})
	})
	for _, want := range []string{"sched-cost", "dirty-skips", "ns/call"} {
		if !strings.Contains(out, want) {
			t.Errorf("online -stats output missing %q:\n%s", want, out)
		}
	}
	out = captureStdout(t, func() error {
		return cmdOnline([]string{"-preset", "stream-mix", "-sched", "v8", "-window", "1024", "-stats"})
	})
	if !strings.Contains(out, "does not report scheduling cost") {
		t.Errorf("v8 -stats should say it has no cost accounting:\n%s", out)
	}
}

func TestCmdOnlineUnboundedMatchesOffline(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdOnline([]string{"-preset", "stream-bursty", "-sched", "iar"})
	})
	if !strings.Contains(out, "regret     0.00%") {
		t.Errorf("unbounded iar should report zero regret:\n%s", out)
	}
	if !strings.Contains(out, "window unbounded") {
		t.Errorf("window line:\n%s", out)
	}
}

func TestCmdOnlineErrors(t *testing.T) {
	if err := cmdOnline([]string{"-preset", "no-such"}); err == nil {
		t.Error("want error for unknown preset")
	}
	if err := cmdOnline(nil); err == nil {
		t.Error("want error when neither -spec nor -preset is given")
	}
	if err := cmdOnline([]string{"-preset", "stream-mix", "-spec", "x.json"}); err == nil {
		t.Error("want error when both -spec and -preset are given")
	}
	if err := cmdOnline([]string{"-preset", "stream-mix", "-sched", "nope"}); err == nil {
		t.Error("want error for unknown scheduler")
	}
}

func TestCmdGenWorkloadSpecFile(t *testing.T) {
	dir := t.TempDir()

	// -example emits a spec the command itself accepts back.
	example := captureStdout(t, func() error {
		return cmdGenWorkload([]string{"-example"})
	})
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(example), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "w.trace")
	profPath := filepath.Join(dir, "w.prof")
	out := captureStdout(t, func() error {
		return cmdGenWorkload([]string{"-spec", specPath, "-o", tracePath, "-profile-out", profPath})
	})
	if !strings.Contains(out, "wrote "+tracePath) || !strings.Contains(out, "wrote "+profPath) {
		t.Errorf("gen-workload output:\n%s", out)
	}

	// The written trace is readable by stats, and online accepts the spec.
	statsOut := captureStdout(t, func() error {
		return cmdStats([]string{"-i", tracePath})
	})
	if !strings.Contains(statsOut, "calls") {
		t.Errorf("stats on generated workload trace:\n%s", statsOut)
	}
	captureStdout(t, func() error {
		return cmdOnline([]string{"-spec", specPath, "-sched", "v8", "-window", "256"})
	})
}

func TestCmdExpOnline(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExp([]string{"online"})
	})
	for _, want := range []string{"regret", "stream-mix", "stream-phased", "stream-bursty", "inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("exp online output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdGenWorkloadExampleParses(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdGenWorkload([]string{"-example"})
	})
	if _, err := workload.ParseSpec([]byte(out)); err != nil {
		t.Fatalf("-example output does not parse as a spec: %v\n%s", err, out)
	}
}
