package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dacapo"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchServeReport is the BENCH_serve.json document: one load-driver run
// against an in-process scheduling service, with client-observed latency
// percentiles and the server's own accounting side by side.
type benchServeReport struct {
	Name                 string  `json:"name"`
	Preset               string  `json:"preset"`
	Requests             int     `json:"requests"`
	Concurrency          int     `json:"concurrency"`
	Workers              int     `json:"workers"`
	CacheSize            int     `json:"cache_size"`
	DistinctFingerprints int     `json:"distinct_fingerprints"`
	DurationMS           float64 `json:"duration_ms"`
	ThroughputRPS        float64 `json:"throughput_rps"`
	Latency              struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Status map[string]int `json:"status"`
	Cache  struct {
		Misses    int     `json:"misses"`
		Coalesced int     `json:"coalesced"`
		Hits      int     `json:"hits"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"cache"`
	QueueWaitAvgMS float64                     `json:"queue_wait_avg_ms"`
	Tenants        map[string]benchServeTenant `json:"tenants"`
	Gates          struct {
		MaxP99MS   float64 `json:"max_p99_ms,omitempty"`
		MinHitRate float64 `json:"min_hit_rate,omitempty"`
	} `json:"gates"`
}

// benchServeTenant is one tenant's slice of the run.
type benchServeTenant struct {
	Requests int `json:"requests"`
	Rejected int `json:"rejected"`
}

// cmdBenchServe replays a streaming workload spec as HTTP load against an
// in-process scheduling service and writes a machine-readable record. The
// rendered call sequence drives tenant arrival order — each request is
// attributed to the cohort that produced its call, so the spec's mixing
// process (steady, poisson, bursty, phase shifts) shapes the traffic exactly
// as it shapes the workload study. -max-p99 and -min-hit-rate turn the
// driver into its own CI gate.
func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	preset := fs.String("preset", "stream-mix", "workload preset replayed as load (stream-mix, stream-phased, stream-bursty)")
	requests := fs.Int("requests", 10000, "total requests to send")
	conc := fs.Int("concurrency", 32, "concurrent client connections")
	workers := fs.Int("workers", server.DefaultWorkers, "server scheduling workers")
	cacheSize := fs.Int("cache", server.DefaultCacheSize, "server response-cache entries")
	queue := fs.Int("queue", server.DefaultQueueDepth, "server queue depth before 429")
	variants := fs.Int("variants", 4, "max_calls variants per (tenant, algo) — bounds distinct fingerprints")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant sustained requests/second (0 disables admission control)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant token-bucket depth (default max(1, rate))")
	tenantInflight := fs.Int("tenant-inflight", 0, "per-tenant in-flight quota (0 disables)")
	out := fs.String("o", "BENCH_serve.json", "output file")
	maxP99 := fs.Duration("max-p99", 0, "fail when client-observed p99 latency exceeds this (0 disables the gate)")
	minHitRate := fs.Float64("min-hit-rate", 0, "fail when the cache hit rate falls below this fraction (0 disables the gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench-serve: unexpected argument %q", fs.Arg(0))
	}
	if *requests < 1 || *conc < 1 {
		return fmt.Errorf("bench-serve: -requests and -concurrency must be positive")
	}

	var spec *workload.Spec
	for _, s := range experiments.OnlineSpecs() {
		if s.Name == *preset {
			spec = s
			break
		}
	}
	if spec == nil {
		names := make([]string, 0, 3)
		for _, s := range experiments.OnlineSpecs() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("bench-serve: unknown preset %q (have %v)", *preset, names)
	}

	// Render the stream once; its call sequence is the traffic script. To map
	// a rendered call back to its cohort, rebuild the FuncID offset ranges the
	// renderer used (cohort profiles are concatenated in order).
	tr, _, err := spec.Render()
	if err != nil {
		return fmt.Errorf("bench-serve: render %s: %w", spec.Name, err)
	}
	offsets := make([]trace.FuncID, len(spec.Cohorts)+1)
	for i, c := range spec.Cohorts {
		b, err := dacapo.ByName(c.Bench)
		if err != nil {
			return fmt.Errorf("bench-serve: %w", err)
		}
		scale := c.Scale
		if scale == 0 {
			scale = workload.DefaultCohortScale
		}
		w, err := b.Load(scale)
		if err != nil {
			return fmt.Errorf("bench-serve: load cohort %s: %w", c.Bench, err)
		}
		offsets[i+1] = offsets[i] + trace.FuncID(w.Profile.NumFuncs())
	}

	// Pre-build the request bodies. The cheap heuristic schedulers keep a
	// 10k-request replay laptop-fast; max_calls variants bound the distinct
	// fingerprints so the run exercises a realistic hit-dominated mix.
	algos := []string{"iar", "jikes", "v8"}
	type reqBody struct {
		body   []byte
		tenant string
	}
	distinct := make(map[string]int) // body -> index into bodies
	var bodies []reqBody
	script := make([]int, *requests)
	for i := range script {
		call := tr.Calls[i%tr.Len()]
		cohort := 0
		for call >= offsets[cohort+1] {
			cohort++
		}
		c := spec.Cohorts[cohort]
		scale := c.Scale
		if scale == 0 {
			scale = workload.DefaultCohortScale
		}
		req := server.ScheduleRequest{
			Algo:     algos[int(call)%len(algos)],
			Bench:    c.Bench,
			Scale:    scale,
			MaxCalls: 200 * (1 + int(call)%*variants),
			Tenant:   c.Bench,
		}
		b, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("bench-serve: %w", err)
		}
		idx, ok := distinct[string(b)]
		if !ok {
			idx = len(bodies)
			distinct[string(b)] = idx
			bodies = append(bodies, reqBody{body: b, tenant: c.Bench})
		}
		script[i] = idx
	}

	m := &obs.Metrics{}
	srv := server.New(server.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         *cacheSize,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		TenantMaxInFlight: *tenantInflight,
		Metrics:           m,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	srvDone := make(chan error, 1)
	go func() {
		srvDone <- srv.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-srvDone:
		return fmt.Errorf("bench-serve: server failed to start: %w", err)
	}
	url := fmt.Sprintf("http://%s/schedule", addr)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conc,
		MaxIdleConnsPerHost: *conc,
	}}

	// Drive: conc goroutines pull indices off a shared cursor, so the wire
	// order follows the script's mixing order up to client concurrency.
	type sample struct {
		latency time.Duration
		status  int
		cache   string
		tenant  string
	}
	samples := make([]sample, *requests)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= *requests {
					return
				}
				rb := bodies[script[i]]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(rb.body))
				if err != nil {
					samples[i] = sample{latency: time.Since(t0), status: -1, tenant: rb.tenant}
					continue
				}
				_, _ = new(bytes.Buffer).ReadFrom(resp.Body)
				resp.Body.Close()
				samples[i] = sample{
					latency: time.Since(t0),
					status:  resp.StatusCode,
					cache:   resp.Header.Get("X-Cache"),
					tenant:  rb.tenant,
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel()
	if err := <-srvDone; err != nil {
		return fmt.Errorf("bench-serve: server: %w", err)
	}

	// Reduce.
	rep := &benchServeReport{
		Name:                 "bench-serve",
		Preset:               spec.Name,
		Requests:             *requests,
		Concurrency:          *conc,
		Workers:              *workers,
		CacheSize:            *cacheSize,
		DistinctFingerprints: len(bodies),
		DurationMS:           float64(elapsed.Nanoseconds()) / 1e6,
		ThroughputRPS:        float64(*requests) / elapsed.Seconds(),
		Status:               make(map[string]int),
		Tenants:              make(map[string]benchServeTenant),
	}
	lat := make([]time.Duration, 0, *requests)
	completed := 0
	for _, s := range samples {
		key := fmt.Sprintf("%d", s.status)
		if s.status == -1 {
			key = "transport-error"
		}
		rep.Status[key]++
		tn := rep.Tenants[s.tenant]
		tn.Requests++
		if s.status == http.StatusTooManyRequests {
			tn.Rejected++
		}
		rep.Tenants[s.tenant] = tn
		if s.status == http.StatusOK {
			completed++
			lat = append(lat, s.latency)
			switch s.cache {
			case "miss":
				rep.Cache.Misses++
			case "coalesced":
				rep.Cache.Coalesced++
			case "hit":
				rep.Cache.Hits++
			}
		}
	}
	if completed > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) float64 {
			i := int(p * float64(len(lat)-1))
			return float64(lat[i].Nanoseconds()) / 1e6
		}
		rep.Latency.P50 = pct(0.50)
		rep.Latency.P90 = pct(0.90)
		rep.Latency.P99 = pct(0.99)
		rep.Latency.Max = float64(lat[len(lat)-1].Nanoseconds()) / 1e6
		rep.Cache.HitRate = float64(rep.Cache.Hits+rep.Cache.Coalesced) / float64(completed)
	}
	if snap := m.Snapshot(); rep.Cache.Misses > 0 {
		rep.QueueWaitAvgMS = float64(snap.ServeQueueWait.Nanoseconds()) / 1e6 / float64(rep.Cache.Misses)
	}
	rep.Gates.MaxP99MS = float64(maxP99.Nanoseconds()) / 1e6
	rep.Gates.MinHitRate = *minHitRate

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench-serve: %w", err)
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		return fmt.Errorf("bench-serve: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench-serve: %d requests (%d fingerprints) in %v — p50 %.2fms p99 %.2fms, hit rate %.3f, %s\n",
		*requests, len(bodies), elapsed.Round(time.Millisecond),
		rep.Latency.P50, rep.Latency.P99, rep.Cache.HitRate, *out)

	// Self-gating: the Makefile's bench-json-serve target sets both flags, so
	// a latency or hit-rate regression fails CI without a separate checker.
	if errors := completed == 0; errors {
		return fmt.Errorf("bench-serve: no request completed (statuses %v)", rep.Status)
	}
	if *maxP99 > 0 && rep.Latency.P99 > float64(maxP99.Nanoseconds())/1e6 {
		return fmt.Errorf("bench-serve: p99 latency %.2fms exceeds the %.2fms gate", rep.Latency.P99, float64(maxP99.Nanoseconds())/1e6)
	}
	if *minHitRate > 0 && rep.Cache.HitRate < *minHitRate {
		return fmt.Errorf("bench-serve: cache hit rate %.3f below the %.3f gate", rep.Cache.HitRate, *minHitRate)
	}
	return nil
}
