package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
)

// cmdExp runs one (or all) of the paper's experiments and prints its table.
// Every harness fans its per-benchmark simulations out over a shared
// internal/runner pool; -par bounds the pool and -stats reports what it did.
func cmdExp(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("exp: missing experiment name (fig5|fig6|fig7|fig8|table1|table2|astar|bnb|exact|priority|variation|predict|ksweep|periodsweep|interp|inline|scalesweep|mt|online|all)")
	}
	which := args[0]
	fs, scale, bench := expFlags("exp " + which)
	md := fs.Bool("md", false, "render tables as GitHub-flavoured markdown")
	par := fs.Int("par", 0, "experiment-runner worker pool size (0 = GOMAXPROCS, 1 = serial)")
	stats := fs.Bool("stats", false, "print runner job/cache and evaluator statistics to stderr after the run")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the run lasts")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *par < 0 {
		return fmt.Errorf("exp: -par must be non-negative (0 = GOMAXPROCS), got %d", *par)
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr)
		if err != nil {
			return fmt.Errorf("exp: -obs-addr: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	eng := runner.New(runner.Options{Workers: *par})
	opts := experiments.Options{Scale: *scale, Runner: eng}
	if *bench != "" {
		opts.Benchmarks = []string{*bench}
	}
	if *md {
		defer report.SetStyle(report.SetStyle(report.Markdown))
	}
	if *stats {
		defer func() {
			fmt.Fprintln(os.Stderr, eng.Stats().Summary())
			fmt.Fprintln(os.Stderr, sim.ReadEvalStats().Summary())
			fmt.Fprintln(os.Stderr, core.ReadIARStats().Summary())
			fmt.Fprintln(os.Stderr, eng.Snapshot())
		}()
	}

	run := func(name string) error {
		switch name {
		case "fig5":
			r, err := experiments.Fig5(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "fig6":
			r, err := experiments.Fig6(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "fig7":
			r, err := experiments.Fig7(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "fig8":
			r, err := experiments.Fig8(opts)
			if err != nil {
				return err
			}
			return r.Render(os.Stdout)
		case "table1":
			rows, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			return experiments.RenderTable1(rows, os.Stdout)
		case "table2":
			rows, err := experiments.Table2(opts)
			if err != nil {
				return err
			}
			return experiments.RenderTable2(rows, os.Stdout)
		case "astar":
			rows, err := experiments.AStarStudy(experiments.AStarOptions{Runner: eng})
			if err != nil {
				return err
			}
			return experiments.RenderAStar(rows, os.Stdout)
		case "bnb":
			// The extended feasibility frontier: branch-and-bound rows past
			// the classic searches' memory wall (not part of "all"; the
			// 10-12 function searches take seconds).
			rows, err := experiments.AStarStudy(experiments.AStarOptions{BnBMaxFuncs: 12, Runner: eng})
			if err != nil {
				return err
			}
			return experiments.RenderSearchFrontier(rows, os.Stdout)
		case "exact":
			// The oracle frontier: bnb rows plus internal/exact rows out to
			// fourteen unique functions (not part of "all"; the terminal
			// probes at twelve-plus functions take tens of seconds).
			rows, err := experiments.AStarStudy(experiments.AStarOptions{
				BnBMaxFuncs: 12, ExactMaxFuncs: 14, Runner: eng})
			if err != nil {
				return err
			}
			return experiments.RenderSearchFrontier(rows, os.Stdout)
		case "priority":
			rows, err := experiments.PriorityStudy(opts)
			if err != nil {
				return err
			}
			if err := experiments.RenderPriority(
				"Queue-discipline study (§7): default scheme, FIFO vs first-compile-first", rows, os.Stdout); err != nil {
				return err
			}
			sat, err := experiments.SaturationStudy()
			if err != nil {
				return err
			}
			fmt.Println()
			return experiments.RenderPriority(
				"Saturation microbenchmark: burst promotions, compile-heavy configuration", sat, os.Stdout)
		case "variation":
			rows, err := experiments.VariationStudy(opts)
			if err != nil {
				return err
			}
			return experiments.RenderVariation(rows, os.Stdout)
		case "predict":
			rows, err := experiments.PredictStudy(opts)
			if err != nil {
				return err
			}
			return experiments.RenderPredict(rows, os.Stdout)
		case "ksweep":
			ks := []int64{1, 3, 5, 8, 10, 20}
			rows, err := experiments.KSweep(opts, ks)
			if err != nil {
				return err
			}
			return experiments.RenderSweep("IAR K sweep (§5.1: [3,10] behaves alike)", ks,
				func(v int64) string { return fmt.Sprintf("K=%d", v) }, rows, os.Stdout)
		case "mt":
			rows, err := experiments.MTStudy(opts, 4)
			if err != nil {
				return err
			}
			return experiments.RenderMT(rows, os.Stdout)
		case "scalesweep":
			rows, err := experiments.ScaleStudy(opts, nil)
			if err != nil {
				return err
			}
			return experiments.RenderScale(rows, os.Stdout)
		case "interp":
			rows, err := experiments.InterpreterStudy(opts)
			if err != nil {
				return err
			}
			return experiments.RenderInterp(rows, os.Stdout)
		case "inline":
			rows, err := experiments.InlineStudy(0)
			if err != nil {
				return err
			}
			return experiments.RenderInline(rows, os.Stdout)
		case "online":
			rows, err := experiments.OnlineStudy(opts)
			if err != nil {
				return err
			}
			return experiments.RenderOnline(rows, os.Stdout)
		case "periodsweep":
			periods := []int64{50000, 200000, 500000, 2000000}
			rows, err := experiments.PeriodSweep(opts, periods)
			if err != nil {
				return err
			}
			return experiments.RenderSweep("Default-scheme sampling-period sweep", periods,
				func(v int64) string { return fmt.Sprintf("S=%dk", v/1000) }, rows, os.Stdout)
		default:
			return fmt.Errorf("exp: unknown experiment %q", name)
		}
	}

	if which == "all" {
		for _, name := range []string{"table1", "fig5", "fig6", "fig7", "fig8", "table2", "astar",
			"priority", "variation", "predict", "ksweep", "periodsweep", "interp", "inline", "scalesweep", "mt", "online"} {
			if err := run(name); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return run(which)
}
