package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/exact"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// loadWorkload resolves the -bench/-scale pair shared by the tool commands.
func loadWorkload(bench string, scale float64) (*dacapo.Workload, error) {
	if bench == "" {
		return nil, fmt.Errorf("missing -bench (one of %s)", strings.Join(dacapo.Names(), ", "))
	}
	b, err := dacapo.ByName(bench)
	if err != nil {
		return nil, err
	}
	return b.Load(scale)
}

// resolveWorkload loads either a named synthetic benchmark or a user-supplied
// trace + profile pair — the bring-your-own-measurements path (the paper's
// own evaluation consumes exactly such collected data).
func resolveWorkload(bench string, scale float64, tracePath, profilePath string) (*dacapo.Workload, error) {
	custom := tracePath != "" || profilePath != ""
	if custom {
		if bench != "" {
			return nil, fmt.Errorf("use either -bench or -trace/-profile, not both")
		}
		if tracePath == "" || profilePath == "" {
			return nil, fmt.Errorf("custom input needs both -trace and -profile")
		}
		tf, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer tf.Close()
		tr, err := trace.ReadBinary(tf)
		if err != nil {
			if _, serr := tf.Seek(0, 0); serr != nil {
				return nil, serr
			}
			tr, err = trace.ReadText(tf)
			if err != nil {
				return nil, fmt.Errorf("%s is not a trace file: %w", tracePath, err)
			}
		}
		pf, err := os.Open(profilePath)
		if err != nil {
			return nil, err
		}
		defer pf.Close()
		p, err := profile.ReadText(pf)
		if err != nil {
			return nil, err
		}
		if err := tr.Validate(p.NumFuncs()); err != nil {
			return nil, fmt.Errorf("trace references functions beyond the profile: %w", err)
		}
		name := tr.Name
		if name == "" {
			name = "custom"
		}
		return &dacapo.Workload{
			Bench:   dacapo.Benchmark{Name: name, Funcs: p.NumFuncs(), SamplePeriod: 400000},
			Trace:   tr,
			Profile: p,
		}, nil
	}
	return loadWorkload(bench, scale)
}

// cmdGen writes a generated benchmark trace to a file.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	scale := fs.Float64("scale", 1.0, "trace length multiplier")
	out := fs.String("o", "", "output file (default: <bench>.trace)")
	format := fs.String("format", "binary", "binary or text")
	profileOut := fs.String("profile-out", "", "also write the timing profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := loadWorkload(*bench, *scale)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = trace.WriteBinary(f, w.Trace)
	case "text":
		err = trace.WriteText(f, w.Trace)
	default:
		return fmt.Errorf("gen: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d calls, %d functions\n", path, w.Trace.Len(), w.Trace.UniqueFuncs())
	if *profileOut != "" {
		pf, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := profile.WriteText(pf, w.Profile); err != nil {
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d functions, %d levels\n", *profileOut, w.Profile.NumFuncs(), w.Profile.Levels)
	}
	return nil
}

// cmdStats summarizes a trace file.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("i", "", "trace file (binary or text)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: missing -i FILE")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		// Retry as text.
		if _, serr := f.Seek(0, 0); serr != nil {
			return serr
		}
		tr, err = trace.ReadText(f)
		if err != nil {
			return fmt.Errorf("stats: not a trace file: %w", err)
		}
	}
	st := trace.ComputeStats(tr)
	t := report.NewTable("", "trace", "calls", "unique funcs", "max count", "median count", "top-10 share")
	t.AddRow(st.Name, fmt.Sprint(st.Length), fmt.Sprint(st.UniqueFuncs),
		fmt.Sprint(st.MaxCount), fmt.Sprint(st.MedianCount), fmt.Sprintf("%.1f%%", st.Top10Share*100))
	return t.Render(os.Stdout)
}

// buildSchedule produces the requested schedule for a workload.
func buildSchedule(w *dacapo.Workload, algo, modelName string) (sim.Schedule, profile.CostModel, error) {
	var model profile.CostModel
	switch modelName {
	case "default":
		model = w.DefaultModel()
	case "oracle":
		model = w.Oracle()
	default:
		return nil, nil, fmt.Errorf("unknown model %q (default|oracle)", modelName)
	}
	switch algo {
	case "iar":
		s, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model})
		return s, model, err
	case "base":
		return core.SingleLevelBase(w.Trace), model, nil
	case "opt":
		return core.SingleLevelOptimizing(w.Trace, model), model, nil
	case "bnb":
		// The exact branch-and-bound search: provably optimal, but only
		// feasible on small instances (roughly a dozen unique functions).
		res, err := astar.BnBSearch(w.Trace, w.Profile, astar.BnBOptions{})
		if err != nil {
			return nil, nil, fmt.Errorf("bnb: %w (exact search needs a small instance; try -scale or a custom -trace)", err)
		}
		return res.Schedule, model, nil
	case "exact":
		// The threshold-escalation optimality oracle: same feasibility range
		// as bnb, with a certificate that nothing cheaper exists.
		res, err := exact.Solve(w.Trace, w.Profile, exact.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("exact: %w (the oracle needs a small instance; try -scale or a custom -trace)", err)
		}
		return res.Schedule, model, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q (iar|base|opt|bnb|exact)", algo)
	}
}

// cmdSchedule prints a compilation schedule, or writes it as an advice file
// (Jikes RVM replay mode, §6.1) with -advice.
func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	scale := fs.Float64("scale", 1.0, "trace length multiplier")
	algo := fs.String("algo", "iar", "iar, base, opt, bnb, or exact (the optimal searches need small instances)")
	modelName := fs.String("model", "default", "cost-benefit model: default or oracle")
	limit := fs.Int("n", 40, "print at most n events (0 = all)")
	advice := fs.String("advice", "", "write the schedule as an advice file instead of printing")
	tracePath := fs.String("trace", "", "custom input: trace file (with -profile)")
	profilePath := fs.String("profile", "", "custom input: profile file (with -trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := resolveWorkload(*bench, *scale, *tracePath, *profilePath)
	if err != nil {
		return err
	}
	sched, _, err := buildSchedule(w, *algo, *modelName)
	if err != nil {
		return err
	}
	if *advice != "" {
		f, err := os.Create(*advice)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.WriteAdvice(f, w.Bench.Name, sched, w.Profile); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d compilation events\n", *advice, len(sched))
		return nil
	}
	fmt.Printf("# %s schedule for %s: %d events, total compile time %d ticks\n",
		*algo, w.Bench.Name, len(sched), sched.TotalCompileTime(w.Profile))
	for i, ev := range sched {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more events)\n", len(sched)-i)
			break
		}
		fmt.Printf("C%d(%s)\n", ev.Level, w.Profile.Funcs[ev.Func].Name)
	}
	return nil
}

// cmdSimulate runs a schedule or online policy and reports the make-span.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	scale := fs.Float64("scale", 1.0, "trace length multiplier")
	algo := fs.String("algo", "iar", "iar, base, opt, bnb, exact, jikes, or v8")
	modelName := fs.String("model", "default", "cost-benefit model: default or oracle")
	workers := fs.Int("workers", 1, "compilation workers (cores)")
	advice := fs.String("advice", "", "replay a schedule from an advice file instead of -algo")
	tracePath := fs.String("trace", "", "custom input: trace file (with -profile)")
	profilePath := fs.String("profile", "", "custom input: profile file (with -trace)")
	timeline := fs.Bool("timeline", false, "print an ASCII timeline of the run (compile lanes + execution)")
	traceOut := fs.String("trace-out", "", "write the run as Chrome trace_event JSON (load in chrome://tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := resolveWorkload(*bench, *scale, *tracePath, *profilePath)
	if err != nil {
		return err
	}
	cfg := sim.Config{CompileWorkers: *workers}

	// Both exporters replay the same recorded event stream; recording is off
	// unless one of them asked for it.
	opts := sim.Options{}
	var rec *obs.Recorder
	if *timeline || *traceOut != "" {
		rec = obs.NewRecorder()
		opts.Recorder = rec
	}
	funcName := func(f int32) string { return w.Profile.Funcs[f].Name }
	emitObs := func(res *sim.Result) error {
		obs.Default().SimRun(res.MakeSpan)
		if rec == nil {
			return nil
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			err = obs.WriteChromeTrace(f, rec.Events(), obs.ChromeOptions{
				FuncName: funcName, Process: "jitsched " + w.Bench.Name,
			})
			if err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s: %d events (open in chrome://tracing or ui.perfetto.dev)\n",
				*traceOut, rec.Len())
		}
		if *timeline {
			return obs.WriteTimeline(os.Stdout, rec.Events(), obs.TimelineOptions{FuncName: funcName})
		}
		return nil
	}

	if *advice != "" {
		f, err := os.Open(*advice)
		if err != nil {
			return err
		}
		defer f.Close()
		sched, label, err := core.ReadAdvice(f)
		if err != nil {
			return err
		}
		res, err := sim.Run(w.Trace, w.Profile, sched, cfg, opts)
		if err != nil {
			return err
		}
		fmt.Printf("replayed advice %q (%d events)\nmake-span: %d ticks (bubbles %d)\n",
			label, len(sched), res.MakeSpan, res.TotalBubble)
		return emitObs(res)
	}

	var res *sim.Result
	switch *algo {
	case "jikes":
		var model profile.CostModel
		if *modelName == "oracle" {
			model = w.Oracle()
		} else {
			model = w.DefaultModel()
		}
		pol, err := policy.NewJikes(model, w.Profile.NumFuncs(), w.Bench.SamplePeriod)
		if err != nil {
			return err
		}
		res, err = sim.RunPolicy(w.Trace, w.Profile, pol, cfg, opts)
		if err != nil {
			return err
		}
	case "v8":
		p2, err := w.Profile.Restrict(0, 1)
		if err != nil {
			return err
		}
		pol, err := policy.NewV8(1)
		if err != nil {
			return err
		}
		res, err = sim.RunPolicy(w.Trace, p2, pol, cfg, opts)
		if err != nil {
			return err
		}
		lb := core.ModelLowerBound(w.Trace, p2, profile.NewOracle(p2))
		fmt.Printf("note: V8 runs on the two lowest levels; two-level lower bound = %d ticks\n", lb)
	default:
		sched, model, err := buildSchedule(w, *algo, *modelName)
		if err != nil {
			return err
		}
		res, err = sim.Run(w.Trace, w.Profile, sched, cfg, opts)
		if err != nil {
			return err
		}
		lb := core.ModelLowerBound(w.Trace, w.Profile, model)
		fmt.Printf("lower bound: %d ticks (normalized make-span %.3f)\n",
			lb, float64(res.MakeSpan)/float64(lb))
	}
	fmt.Printf("make-span: %d ticks\nexecution: %d ticks\nbubbles:   %d ticks over %d stalls\ncompiles:  %d events, busy %d ticks, done at %d\n",
		res.MakeSpan, res.TotalExec, res.TotalBubble, res.BubbleCount,
		len(res.Compiles), res.CompileBusy, res.CompileEnd)
	return emitObs(res)
}
