// Command benchjson converts `go test -bench` output into a machine-readable
// JSON document. It reads the benchmark log from stdin and writes one JSON
// object with every benchmark's iteration count and metrics — the standard
// ns/op, B/op and allocs/op plus any custom b.ReportMetric units (the
// normalized make-span columns of the root benchmarks).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark (and sub-benchmark) name without the -P GOMAXPROCS
	// suffix.
	Name string `json:"name"`
	// Package is the import path from the preceding pkg: header, if any.
	Package string `json:"package,omitempty"`
	// Procs is the GOMAXPROCS suffix of the name (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps a unit (ns/op, allocs/op, makespan/LB, ...) to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, or returns false for headers,
// PASS/ok trailers, and anything else go test prints.
func parseLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       fields[0],
		Package:    pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	// Split the trailing -P GOMAXPROCS marker off the last name element.
	if i := strings.LastIndex(b.Name, "-"); i > 0 && !strings.Contains(b.Name[i:], "/") {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func run(out string) error {
	var doc Document
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// go test writes the log to stdout too when it is piped; echo it so
		// the human-readable form still lands in the terminal or CI log.
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if b, ok := parseLine(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
