package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkIAR/antlr-8   \t     100\t    241000 ns/op\t  1.21 makespan/LB\t       0 allocs/op", "repro")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if b.Name != "BenchmarkIAR/antlr" || b.Procs != 8 || b.Package != "repro" || b.Iterations != 100 {
		t.Fatalf("parsed header wrong: %+v", b)
	}
	want := map[string]float64{"ns/op": 241000, "makespan/LB": 1.21, "allocs/op": 0}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.234s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line, ""); ok {
			t.Errorf("line %q accepted as a benchmark", line)
		}
	}
}
