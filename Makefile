# Build, test, and verification targets for the reproduction.
#
# `make ci` is the full gate: formatting, vet, build, the race-enabled test
# suite (including the runner's differential tests under -cpu=1,4), short
# fuzz smokes (trace codecs, BnB state keys, the scheduling service's request
# decoder), the serve-mode golden smoke, and the observability overhead
# guard. It needs nothing beyond the Go toolchain.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet fmt-check test race runner-race fuzz-smoke serve-smoke oracle-short bench bench-guard bench-json bench-json-search bench-json-online bench-json-serve golden ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails listing the offending files if anything is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# The determinism contract: serial vs parallel sweeps bit-identical, on one
# and four simulated CPUs, race-clean.
runner-race:
	$(GO) test -race -cpu=1,4 -count=1 ./internal/runner/...

# Short fuzz passes over both trace codecs (seed corpus in
# internal/trace/testdata/fuzz/), the BnB state-key canonicalization
# (seed corpus in internal/astar/testdata/fuzz/), the scheduling
# service's request decoder (seed corpus in internal/server/testdata/requests/),
# the streaming workload spec codec + renderer (seed corpus in
# internal/workload/testdata/fuzz/), and the CDCL-vs-brute-force CNF
# differential (in-code seed corpus in internal/npc/satdiff_test.go).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzReadText -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzPrefixCursor -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzStateKey -fuzztime=$(FUZZTIME) ./internal/astar/
	$(GO) test -run='^$$' -fuzz=FuzzScheduleRequest -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -run='^$$' -fuzz=FuzzBatchRequest -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -run='^$$' -fuzz=FuzzWorkloadSpec -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run='^$$' -fuzz=FuzzCNFSolve -fuzztime=$(FUZZTIME) ./internal/npc/

# One request per algorithm through a real scheduling server, each response
# diffed byte-for-byte against internal/server/testdata/golden/. Run
# `go test ./internal/server/ -run TestServeSmoke -update` after an
# intentional wire-format change.
serve-smoke:
	$(GO) test -run=TestServeSmoke -count=1 ./internal/server/

# Serial vs parallel sweep benchmark (wall-clock wins need GOMAXPROCS > 1).
bench:
	$(GO) test -run='^$$' -bench=Fig5Sweep -cpu=4 ./internal/runner/

# The allocation and search-node budgets: with the recorder disabled, the
# simulator's execution loop must not allocate at all; a warm sim.Evaluator
# and a warm serial BnB searcher must be allocation-free; a warm arena-backed
# IAR run must stay at or under 50 allocations and well under the committed
# pre-arena bytes-per-op (TestIARArenaAllocGuard gates both from the root
# BenchmarkIAR path); and branch-and-bound must prove optimality on the
# 8-function study instance well inside DefaultMaxNodes. The tests assert the
# budgets; the benchmark runs print the numbers for the log. The exact-solver
# pair gates the oracle the same way: a warm Solver stays under its small
# allocation ceiling, and two identical solves are bit-identical.
bench-guard:
	$(GO) test -run='TestDisabledRecorderZeroAlloc|TestRecorderDisabledZeroAlloc|TestEvaluatorZeroAlloc' -count=1 \
		./internal/obs/ ./internal/sim/
	$(GO) test -run='TestBnBWarmZeroAlloc|TestBnBWarmZeroAllocCancellable|TestBnBNodeBudgetGuard' -count=1 ./internal/astar/
	$(GO) test -run='TestSolverWarmAllocs|TestSolveDeterminism' -count=1 ./internal/exact/
	$(GO) test -run='TestIARArenaWarmAllocGuard' -count=1 ./internal/core/
	$(GO) test -run='TestIARArenaAllocGuard' -count=1 .
	$(GO) test -run='TestOnlineObserveAllocGuard|TestOnlineReplanSpeedupGuard' -count=1 ./internal/online/
	$(GO) test -run='^$$' -bench=BenchmarkRunCallsRecorder -benchtime=100x ./internal/sim/
	$(GO) test -run='^$$' -bench='BenchmarkEvaluatorRun|BenchmarkEvaluatorDelta' -benchmem -benchtime=50x ./internal/sim/

# Machine-readable benchmark record: the evaluator fast path, the search
# micro-benchmarks, and the figure benchmarks with their normalized make-span
# metrics, collected into BENCH_core.json via cmd/benchjson.
bench-json:
	@{ $(GO) test -run='^$$' -bench='^BenchmarkFig5$$|^BenchmarkIAR$$|^BenchmarkIARAblation$$|^BenchmarkSimReplay$$|^BenchmarkAStarSearch6$$' \
		-benchmem -benchtime=3x . && \
	$(GO) test -run='^$$' -bench='BenchmarkSimRun|BenchmarkEvaluator' -benchmem -benchtime=50x ./internal/sim/ && \
	$(GO) test -run='^$$' -bench='BenchmarkBeamSearch' -benchmem -benchtime=10x ./internal/astar/; } \
		| $(GO) run ./cmd/benchjson -o BENCH_core.json
	@echo "wrote BENCH_core.json"

# Machine-readable search benchmarks: the exact searches (A*, beam, BnB serial
# and parallel) on their study instances, plus the exact-solver oracle with
# its CDCL and pruning counters, collected into BENCH_search.json.
bench-json-search:
	@{ $(GO) test -run='^$$' -bench='^BenchmarkAStarSearch6$$' -benchmem -benchtime=3x . && \
	$(GO) test -run='^$$' -bench='BenchmarkBeamSearch|BenchmarkBnBStudy8' -benchmem -benchtime=5x ./internal/astar/ && \
	$(GO) test -run='^$$' -bench='BenchmarkExactSolve' -benchmem -benchtime=3x ./internal/exact/; } \
		| $(GO) run ./cmd/benchjson -o BENCH_search.json
	@echo "wrote BENCH_search.json"

# Machine-readable online-scheduling benchmarks: the replanning IAR scheduler
# across the lookahead ladder (regret vs offline IAR and scheduler-side
# ns/call reported as custom metrics), the long-stream incremental-replanning
# headline (sched-ns/call and replan-speedup vs the frozen from-scratch
# reference), the three schedulers head-to-head at one bounded window, and
# the workload generator itself, collected into BENCH_online.json.
bench-json-online:
	@{ $(GO) test -run='^$$' -bench='BenchmarkOnlineWindow|BenchmarkOnlineLongStream|BenchmarkOnlineSchedulers|BenchmarkWorkloadRender' \
		-benchmem -benchtime=3x ./internal/online/; } \
		| $(GO) run ./cmd/benchjson -o BENCH_online.json
	@echo "wrote BENCH_online.json"

# Serving-path load record: replay the stream-mix workload preset as ≥10k
# HTTP requests against an in-process scheduling service and write
# BENCH_serve.json (latency percentiles, cache hit rate, queue wait,
# per-tenant accounting). The driver gates itself: a p99 above 2s or a cache
# hit rate below 0.95 fails the target, so serving-path latency and
# single-flight regressions fail CI without a separate checker.
bench-json-serve:
	$(GO) run ./cmd/jitsched bench-serve -preset stream-mix -requests 12000 -concurrency 32 \
		-o BENCH_serve.json -max-p99 2s -min-hit-rate 0.95
	@echo "wrote BENCH_serve.json"

# The differential oracle suite at -short depth: exact vs BnB vs exhaustive
# agreement, heuristics-never-beat-exact, and the CDCL property tests — the
# quick certification pass (the full-depth suite runs in `make test`/`race`).
oracle-short:
	$(GO) test -short -count=1 ./internal/exact/... ./internal/npc/

# Regenerate the experiment golden files after an intentional output change.
golden:
	$(GO) test ./internal/experiments -run TestGolden -update

ci: fmt-check vet build race runner-race fuzz-smoke serve-smoke oracle-short bench-guard bench-json bench-json-search bench-json-online bench-json-serve
