# Build, test, and verification targets for the reproduction.
#
# `make ci` is the full gate: formatting, vet, build, the race-enabled test
# suite (including the runner's differential tests under -cpu=1,4), a short
# fuzz smoke over the trace codec, and the observability overhead guard. It
# needs nothing beyond the Go toolchain.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet fmt-check test race runner-race fuzz-smoke bench bench-guard golden ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails listing the offending files if anything is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# The determinism contract: serial vs parallel sweeps bit-identical, on one
# and four simulated CPUs, race-clean.
runner-race:
	$(GO) test -race -cpu=1,4 -count=1 ./internal/runner/...

# Short fuzz passes over both trace codecs (seed corpus in
# internal/trace/testdata/fuzz/).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzReadText -fuzztime=$(FUZZTIME) ./internal/trace/

# Serial vs parallel sweep benchmark (wall-clock wins need GOMAXPROCS > 1).
bench:
	$(GO) test -run='^$$' -bench=Fig5Sweep -cpu=4 ./internal/runner/

# The observability overhead contract: with the recorder disabled, the
# simulator's execution loop must not allocate at all. The tests assert 0
# allocs/op; the benchmark run prints the numbers for the log.
bench-guard:
	$(GO) test -run='TestDisabledRecorderZeroAlloc|TestRecorderDisabledZeroAlloc' -count=1 \
		./internal/obs/ ./internal/sim/
	$(GO) test -run='^$$' -bench=BenchmarkRunCallsRecorder -benchtime=100x ./internal/sim/

# Regenerate the experiment golden files after an intentional output change.
golden:
	$(GO) test ./internal/experiments -run TestGolden -update

ci: fmt-check vet build race runner-race fuzz-smoke bench-guard
