# Build, test, and verification targets for the reproduction.
#
# `make ci` is the full gate: vet, build, the race-enabled test suite
# (including the runner's differential tests under -cpu=1,4), and a short
# fuzz smoke over the trace codec. It needs nothing beyond the Go toolchain.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race runner-race fuzz-smoke bench golden ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# The determinism contract: serial vs parallel sweeps bit-identical, on one
# and four simulated CPUs, race-clean.
runner-race:
	$(GO) test -race -cpu=1,4 -count=1 ./internal/runner/...

# Short fuzz passes over both trace codecs (seed corpus in
# internal/trace/testdata/fuzz/).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadBinary -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzReadText -fuzztime=$(FUZZTIME) ./internal/trace/

# Serial vs parallel sweep benchmark (wall-clock wins need GOMAXPROCS > 1).
bench:
	$(GO) test -run='^$$' -bench=Fig5Sweep -cpu=4 ./internal/runner/

# Regenerate the experiment golden files after an intentional output change.
golden:
	$(GO) test ./internal/experiments -run TestGolden -update

ci: vet build race runner-race fuzz-smoke
