// PARTITION reduction: watch the NP-completeness proof of §4.2 compute.
//
// The program reduces a PARTITION instance to an OCSP instance, shows that a
// balanced subset's schedule hits the make-span bound 2(1+t+n) exactly,
// shows that unbalanced subsets miss it, and recovers the partition back out
// of a bound-achieving schedule.
//
// Run with:
//
//	go run ./examples/partition-reduction
package main

import (
	"fmt"
	"log"

	"repro/internal/astar"
	"repro/internal/npc"
)

func main() {
	s := []int64{5, 4, 3, 2}
	fmt.Println("PARTITION instance S =", s)

	inst, err := npc.Reduce(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced to OCSP: %d functions, %d calls, target make-span %d = 2(1+t+n) with t=%d, n=%d\n\n",
		inst.Profile.NumFuncs(), inst.Trace.Len(), inst.Bound, inst.T, len(s))

	witness := npc.SolveBruteForce(s)
	if witness == nil {
		log.Fatal("instance unexpectedly unpartitionable")
	}
	var left, right []int64
	for i, in := range witness {
		if in {
			left = append(left, s[i])
		} else {
			right = append(right, s[i])
		}
	}
	fmt.Printf("brute-force partition: %v | %v\n", left, right)

	sched, err := inst.ScheduleForSubset(witness)
	if err != nil {
		log.Fatal(err)
	}
	span, err := inst.MakeSpan(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("its schedule's make-span: %d (bound %d) — forward direction holds\n", span, inst.Bound)

	// An unbalanced subset misses the bound.
	bad := make([]bool, len(s))
	bad[0] = true // {5} sums to 5, not t=7
	badSched, err := inst.ScheduleForSubset(bad)
	if err != nil {
		log.Fatal(err)
	}
	badSpan, err := inst.MakeSpan(badSched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbalanced subset {5}: make-span %d > %d — as the proof requires\n", badSpan, inst.Bound)

	// Backward direction: recover the partition from the schedule.
	mask, err := inst.SubsetFromSchedule(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition recovered from the schedule: %v\n\n", mask)

	// Cross-check with the exhaustive OCSP solver: the optimal make-span of
	// the reduced instance is exactly the bound.
	opt, err := astar.Exhaustive(inst.Trace, inst.Profile, astar.Options{MaxNodes: 10_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive OCSP optimum: %d (visited %d nodes) — deciding OCSP decides PARTITION\n\n",
		opt.MakeSpan, opt.NodesAllocated)

	// Go one level up the hardness chain: 3-SAT -> SUBSET-SUM -> PARTITION
	// -> OCSP, end to end.
	formula := &npc.Formula{Vars: 3, Clauses: []npc.Clause{
		{1, 2, -3}, {-1, 3, 3}, {-2, -3, 1},
	}}
	fmt.Println("3-SAT chain: (x1∨x2∨¬x3) ∧ (¬x1∨x3∨x3) ∧ (¬x2∨¬x3∨x1)")
	si, err := npc.ReduceSAT(formula)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> SUBSET-SUM with %d elements, target %d\n", len(si.SubsetSum.S), si.SubsetSum.T)
	fmt.Printf("  -> PARTITION with %d elements\n", len(si.Partition))
	fmt.Printf("  -> OCSP with %d functions, make-span bound %d\n", si.OCSP.Profile.NumFuncs(), si.OCSP.Bound)
	assign, err := npc.SolveSATBruteForce(formula)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satisfying assignment: %v\n", assign)
	satSched, err := si.ScheduleForAssignment(assign)
	if err != nil {
		log.Fatal(err)
	}
	satSpan, err := si.OCSP.MakeSpan(satSched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("its schedule meets the bound exactly: %d == %d\n", satSpan, si.OCSP.Bound)
	fmt.Println("(the chain shows NP-hardness; the paper's tech report strengthens it to strong NP-completeness)")
}
