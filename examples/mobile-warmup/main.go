// Mobile warmup: compilation scheduling as a response-time problem.
//
// The paper motivates warmup-run performance with mobile applications, where
// "better performance translates to shorter response time" (§1). This
// example models an app launch: a warmup burst that touches most of the code
// once, followed by interactive bursts against a hot working set. Instead of
// only the make-span, it reports *time to interaction k* — when the k-th
// interactive burst completes — under the default Jikes-style scheduler and
// under an IAR schedule.
//
// Run with:
//
//	go run ./examples/mobile-warmup
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

const (
	numFuncs     = 800
	launchCalls  = 60000
	interactions = 8
)

func main() {
	// An app-launch trace: heavy warmup (class loading, view inflation),
	// then phases standing in for user interactions.
	tr, err := trace.Generate(trace.GenConfig{
		Name: "app-launch", NumFuncs: numFuncs, Length: launchCalls, Seed: 42,
		ZipfS: 1.6, Phases: interactions, CoreFuncs: 80, CoreShare: 0.6,
		BurstMean: 4, WarmupFrac: 0.25, WarmupCoverage: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := profile.Synthesize(numFuncs, profile.DefaultTiming(4, 43))
	if err != nil {
		log.Fatal(err)
	}
	model := profile.NewEstimated(p, profile.DefaultEstimatedConfig(44))
	cfg := sim.DefaultConfig()

	// Interaction k "completes" at the end of phase k: call index boundary.
	warmupEnd := launchCalls / 4
	boundary := func(k int) int {
		return warmupEnd + (launchCalls-warmupEnd)*(k+1)/interactions - 1
	}

	// Default scheme: on-demand base compiles + sampling-driven recompiles.
	jikes, err := policy.NewJikes(model, numFuncs, 150000)
	if err != nil {
		log.Fatal(err)
	}
	defRes, err := sim.RunPolicy(tr, p, jikes, cfg, sim.Options{RecordCalls: true})
	if err != nil {
		log.Fatal(err)
	}

	// IAR schedule, as a cross-run-profile-driven runtime could install it.
	sched, err := core.IAR(tr, p, core.IAROptions{Model: model})
	if err != nil {
		log.Fatal(err)
	}
	iarRes, err := sim.Run(tr, p, sched, cfg, sim.Options{RecordCalls: true})
	if err != nil {
		log.Fatal(err)
	}

	endOf := func(res *sim.Result, call int) float64 {
		// Completion of call i = start + duration = start of i+1 in a
		// gapless stretch; use the recorded start of the next call when
		// available, else the make-span.
		if call+1 < len(res.CallStarts) {
			return float64(res.CallStarts[call+1]) / 1000 // ms at 1 tick = 1 µs
		}
		return float64(res.MakeSpan) / 1000
	}

	fmt.Printf("App launch: %d calls over %d functions; warmup covers the first %d calls\n\n",
		tr.Len(), tr.UniqueFuncs(), warmupEnd)
	fmt.Printf("%-16s %14s %14s %9s\n", "milestone", "default (ms)", "IAR (ms)", "saved")
	dw, iw := endOf(defRes, warmupEnd-1), endOf(iarRes, warmupEnd-1)
	fmt.Printf("%-16s %14.1f %14.1f %8.0f%%\n", "warmup done", dw, iw, (1-iw/dw)*100)
	for k := 0; k < interactions; k++ {
		d := endOf(defRes, boundary(k))
		i := endOf(iarRes, boundary(k))
		fmt.Printf("interaction %-4d %14.1f %14.1f %8.0f%%\n", k+1, d, i, (1-i/d)*100)
	}

	lb := core.ModelLowerBound(tr, p, model)
	fmt.Printf("\nfull launch: default %.1f ms, IAR %.1f ms, lower bound %.1f ms\n",
		float64(defRes.MakeSpan)/1000, float64(iarRes.MakeSpan)/1000, float64(lb)/1000)
	fmt.Printf("default spent %.1f ms in bubbles; IAR %.1f ms\n",
		float64(defRes.TotalBubble)/1000, float64(iarRes.TotalBubble)/1000)
}
