// Quickstart: model a tiny program, try several compilation schedules, and
// see why ordering matters.
//
// This walks through the exact example of Figs. 1 and 2 of the paper: three
// functions, four calls, two compilation levels — and shows how the same
// schedule can be best for one call sequence and worst for a slightly longer
// one, then lets the solvers (A* optimal and the IAR heuristic) loose on it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// Three functions, two levels each. Level 1 compiles slower but runs
	// faster — the essential JIT trade-off.
	p := &profile.Profile{
		Levels: 2,
		Funcs: []profile.FuncTimes{
			{Name: "f0", Compile: []int64{1, 1}, Exec: []int64{1, 1}},
			{Name: "f1", Compile: []int64{1, 3}, Exec: []int64{3, 2}},
			{Name: "f2", Compile: []int64{3, 5}, Exec: []int64{3, 1}},
		},
	}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	// The Fig. 1 invocation sequence: f0 f1 f2 f1.
	seq1 := trace.New("fig1", []trace.FuncID{0, 1, 2, 1})

	schedules := []struct {
		name string
		s    sim.Schedule
	}{
		{"s1: all at level 0", sim.Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 0}, {Func: 2, Level: 0}}},
		{"s2: f1 at level 1", sim.Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 1}, {Func: 2, Level: 0}}},
		{"s3: f1 twice     ", sim.Schedule{{Func: 0, Level: 0}, {Func: 1, Level: 0}, {Func: 2, Level: 0}, {Func: 1, Level: 1}}},
	}

	fmt.Println("Invocation sequence:", "f0 f1 f2 f1", "(Fig. 1 of the paper)")
	for _, sc := range schedules {
		res, err := sim.Run(seq1, p, sc.s, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> make-span %2d (bubbles %d)\n", sc.name, res.MakeSpan, res.TotalBubble)
	}

	// Extend the sequence with one more call to f2 (Fig. 2) and append a
	// level-1 recompilation of f2 where it helps: the ranking flips.
	seq2 := trace.New("fig2", []trace.FuncID{0, 1, 2, 1, 2})
	extended := []struct {
		name string
		s    sim.Schedule
	}{
		{"s1 + C1(f2)", append(schedules[0].s.Clone(), sim.CompileEvent{Func: 2, Level: 1})},
		{"s2 + C1(f2)", append(schedules[1].s.Clone(), sim.CompileEvent{Func: 2, Level: 1})},
		{"s3 as is   ", schedules[2].s},
	}
	fmt.Println("\nOne more call to f2 (Fig. 2): the previously-best schedule becomes the worst")
	for _, sc := range extended {
		res, err := sim.Run(seq2, p, sc.s, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s -> make-span %2d\n", sc.name, res.MakeSpan)
	}

	// For instances this small, A* finds the certified optimum.
	opt, err := astar.Search(seq2, p, astar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA* optimum for the extended sequence: make-span %d, schedule:", opt.MakeSpan)
	for _, ev := range opt.Schedule {
		fmt.Printf(" C%d(%s)", ev.Level, p.Funcs[ev.Func].Name)
	}
	fmt.Println()

	// And the IAR heuristic gets close without searching.
	iar, err := core.IAR(seq2, p, core.IAROptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(seq2, p, iar, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lb := core.LowerBound(seq2, p)
	fmt.Printf("IAR heuristic: make-span %d (optimum %d, lower bound %d)\n", res.MakeSpan, opt.MakeSpan, lb)

	// Draw the optimal schedule's timeline, Figs. 1-2 style.
	fmt.Println("\nOptimal schedule, tick by tick:")
	optRes, err := sim.Run(seq2, p, opt.Schedule, sim.DefaultConfig(), sim.Options{RecordCalls: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.RenderTimeline(os.Stdout, seq2, p, optRes, 60); err != nil {
		log.Fatal(err)
	}
}
