// Trace collection: from program structure to compilation schedule.
//
// The paper's evaluation starts with a data-collection framework that
// records the dynamic call sequence of a real program (§6.1). This example
// runs that pipeline end to end on a synthetic program: generate a layered
// call graph, *execute* it to collect the invocation sequence (one event per
// method entry, as a profiler would), derive timing from the program's own
// code sizes, and hand everything to the schedulers.
//
// Run with:
//
//	go run ./examples/trace-collection
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	prog, err := program.Generate(program.GenConfig{
		Funcs: 400, Layers: 6, FanOut: 3, LoopMean: 5, BranchProb: 0.6, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated program: %d functions in a 6-layer call graph\n", len(prog.Funcs))

	tr, err := program.Collect(prog, program.CollectOptions{MaxCalls: 250000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("collected trace:   %d calls, %d functions reached, top-10 share %.0f%%\n",
		st.Length, st.UniqueFuncs, st.Top10Share*100)

	// Which call paths got hot? Show the three most-invoked functions.
	counts := tr.Counts()
	type fc struct {
		f trace.FuncID
		n int64
	}
	var fcs []fc
	for f, n := range counts {
		if n > 0 {
			fcs = append(fcs, fc{trace.FuncID(f), n})
		}
	}
	sort.Slice(fcs, func(i, j int) bool { return fcs[i].n > fcs[j].n })
	fmt.Println("hottest functions:")
	for _, h := range fcs[:3] {
		fmt.Printf("  %s: %d invocations (%d call sites, work %d)\n",
			prog.Funcs[h.f].Name, h.n, len(prog.Funcs[h.f].Body), prog.Funcs[h.f].Work)
	}

	// Timing comes from the program's own code sizes, not a statistical draw.
	prof, err := profile.SynthesizeWithSizes(prog.Sizes(), profile.DefaultTiming(4, 2025))
	if err != nil {
		log.Fatal(err)
	}

	model := profile.NewEstimated(prof, profile.DefaultEstimatedConfig(3))
	lb := core.ModelLowerBound(tr, prof, model)
	sched, err := core.IAR(tr, prof, core.IAROptions{Model: model})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(tr, prof, sched, sim.DefaultConfig(), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := sim.Run(tr, prof, core.SingleLevelBase(tr), sim.DefaultConfig(), sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscheduling the collected trace:\n")
	fmt.Printf("  lower bound:      %8.1f ms\n", float64(lb)/1000)
	fmt.Printf("  IAR schedule:     %8.1f ms (%.2fx bound, %d compile events)\n",
		float64(res.MakeSpan)/1000, float64(res.MakeSpan)/float64(lb), len(sched))
	fmt.Printf("  base-level only:  %8.1f ms (%.2fx bound)\n",
		float64(base.MakeSpan)/1000, float64(base.MakeSpan)/float64(lb))
}
