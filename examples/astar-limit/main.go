// A* limit: experience the §6.2.5 feasibility cliff.
//
// A*-search provably expands no more nodes than any other optimal
// search-tree algorithm with the same heuristic — and still falls over
// spectacularly on OCSP, because it must keep every incompletely-examined
// path in memory while the tree grows exponentially. This demo sweeps the
// number of unique functions and prints how the stored-node count explodes
// until the budget (standing in for the paper's 2 GB heap) runs out, then
// shows that the IAR heuristic solves the same instances instantly.
//
// Run with:
//
//	go run ./examples/astar-limit
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	rows, err := experiments.AStarStudy(experiments.AStarOptions{MinFuncs: 3, MaxFuncs: 9, Calls: 50})
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.RenderAStar(rows, os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe heuristic route: IAR on the instances A* could not finish")
	for nf := 7; nf <= 9; nf++ {
		tr, p := experiments.AStarInstance(nf, 50, int64(nf)+1000)
		start := time.Now()
		sched, err := core.IAR(tr, p, core.IAROptions{})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		res, err := sim.Run(tr, p, sched, sim.DefaultConfig(), sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		lb := core.LowerBound(tr, p)

		// Can A* at least bound it within budget? (It cannot, but show the
		// partial stats.)
		_, aerr := astar.Search(tr, p, astar.Options{MaxNodes: 200_000})
		status := "A* ok"
		if errors.Is(aerr, astar.ErrBudgetExhausted) {
			status = "A* out of memory at 200k nodes"
		}
		fmt.Printf("  %d funcs: IAR make-span %d (lower bound %d) in %v; %s\n",
			nf, res.MakeSpan, lb, elapsed.Round(time.Microsecond), status)
	}
}
