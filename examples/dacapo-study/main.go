// DaCapo study: reproduce the paper's Figure 5 comparison on one synthetic
// DaCapo workload, with ASCII bars, and inspect where the default scheme
// loses its time.
//
// Run with:
//
//	go run ./examples/dacapo-study [benchmark]
//
// The benchmark defaults to jython; any Table 1 name works.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	name := "jython"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, err := dacapo.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	w, err := b.Load(1)
	if err != nil {
		log.Fatal(err)
	}
	model := w.DefaultModel()
	tr, p := w.Trace, w.Profile
	cfg := sim.DefaultConfig()

	fmt.Printf("%s: %d calls over %d functions (paper trace: %d calls)\n\n",
		b.Name, tr.Len(), tr.UniqueFuncs(), b.FullLength)

	lb := core.ModelLowerBound(tr, p, model)

	type outcome struct {
		name string
		res  *sim.Result
	}
	var outcomes []outcome

	iarSched, err := core.IAR(tr, p, core.IAROptions{Model: model})
	if err != nil {
		log.Fatal(err)
	}
	iarRes, err := sim.Run(tr, p, iarSched, cfg, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	outcomes = append(outcomes, outcome{"IAR algorithm", iarRes})

	jikes, err := policy.NewJikes(model, p.NumFuncs(), b.SamplePeriod)
	if err != nil {
		log.Fatal(err)
	}
	defRes, err := sim.RunPolicy(tr, p, jikes, cfg, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	outcomes = append(outcomes, outcome{"default (Jikes RVM)", defRes})

	baseRes, err := sim.Run(tr, p, core.SingleLevelBase(tr), cfg, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	outcomes = append(outcomes, outcome{"base-level only", baseRes})

	optRes, err := sim.Run(tr, p, core.SingleLevelOptimizing(tr, model), cfg, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	outcomes = append(outcomes, outcome{"optimizing-level only", optRes})

	maxNorm := 0.0
	for _, o := range outcomes {
		if n := float64(o.res.MakeSpan) / float64(lb); n > maxNorm {
			maxNorm = n
		}
	}
	fmt.Println("Normalized make-span (1.00 = lower bound):")
	fmt.Printf("  %-22s %5.2f |%s\n", "lower-bound", 1.0, report.Bar(1, maxNorm, 40))
	for _, o := range outcomes {
		n := float64(o.res.MakeSpan) / float64(lb)
		fmt.Printf("  %-22s %5.2f |%s\n", o.name, n, report.Bar(n, maxNorm, 40))
	}

	fmt.Println("\nWhere the time goes (ticks):")
	fmt.Printf("  %-22s %12s %12s %10s %9s\n", "scheme", "make-span", "execution", "bubbles", "compiles")
	for _, o := range outcomes {
		fmt.Printf("  %-22s %12d %12d %10d %9d\n",
			o.name, o.res.MakeSpan, o.res.TotalExec, o.res.TotalBubble, len(o.res.Compiles))
	}

	// Which functions did the default scheme leave unoptimized the longest?
	// Compare each hot function's recompile time under Jikes to its position
	// in the IAR schedule.
	counts := tr.Counts()
	type hot struct {
		f trace.FuncID
		n int64
	}
	var hots []hot
	for f, n := range counts {
		if n > 0 {
			hots = append(hots, hot{trace.FuncID(f), n})
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].n > hots[j].n })

	// Where do new functions appear, and how concentrated is each stretch
	// of the run?
	ws, err := trace.Windows(tr, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTrace timeline (8 windows):")
	fmt.Printf("  %-8s %10s %10s %10s\n", "window", "unique", "new funcs", "top share")
	for i, win := range ws {
		fmt.Printf("  %-8d %10d %10d %9.0f%%\n", i+1, win.Unique, win.New, win.TopShare*100)
	}

	fmt.Println("\nHottest functions: when did their optimized code arrive? (ticks)")
	fmt.Printf("  %-8s %9s %14s %14s\n", "function", "#calls", "Jikes default", "IAR schedule")
	readyAt := func(res *sim.Result, f trace.FuncID) int64 {
		best := int64(-1)
		for _, c := range res.Compiles {
			if c.Event.Func == f && c.Event.Level > 0 {
				if best < 0 || c.Done < best {
					best = c.Done
				}
			}
		}
		return best
	}
	for _, h := range hots[:5] {
		jt := readyAt(defRes, h.f)
		it := readyAt(iarRes, h.f)
		js, is := "never", "never"
		if jt >= 0 {
			js = fmt.Sprint(jt)
		}
		if it >= 0 {
			is = fmt.Sprint(it)
		}
		fmt.Printf("  %-8s %9d %14s %14s\n", p.Funcs[h.f].Name, h.n, js, is)
	}
}
