// Package repro is a Go reproduction of "Finding the Limit: Examining the
// Potential and Complexity of Compilation Scheduling for JIT-Based Runtime
// Systems" (Ding, Zhou, Zhao, Eisenstat, Shen — ASPLOS 2014).
//
// The implementation lives in internal/ packages, organized one subsystem
// per package:
//
//   - internal/trace — call sequences: types, codecs, synthetic generators
//   - internal/profile — per-level timing data and cost-benefit models
//   - internal/sim — the make-span measurement framework of §6.1
//   - internal/core — the IAR algorithm, single-level schemes, bounds (§4-5)
//   - internal/policy — the Jikes RVM and V8 online schedulers (§6.2)
//   - internal/astar — the A* and exhaustive tree searches (§5.3)
//   - internal/npc — the PARTITION→OCSP NP-completeness reduction (§4.2)
//   - internal/dacapo — the nine synthetic Table 1 workloads
//   - internal/experiments — one harness per paper table/figure
//   - internal/report — text tables and statistics helpers
//
// The cmd/jitsched command reproduces every table and figure; the examples/
// directory holds five runnable walkthroughs; bench_test.go at this level
// benchmarks each experiment and the core algorithms. See README.md for a
// tour and EXPERIMENTS.md for paper-vs-measured results.
package repro
