// Benchmarks regenerating each paper table and figure (see EXPERIMENTS.md),
// plus micro-benchmarks of the core algorithms and ablation benchmarks for
// IAR's design choices. Quality metrics (normalized make-spans) are emitted
// via b.ReportMetric alongside the timing, so `go test -bench=.` doubles as
// a results dashboard.
package repro_test

import (
	"testing"

	"repro/internal/astar"
	"repro/internal/core"
	"repro/internal/dacapo"
	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkTable1 regenerates the benchmark-characteristics table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (default cost-benefit model) and
// reports the key normalized make-spans.
func BenchmarkFig5(b *testing.B) {
	var res *experiments.FigResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig5(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := res.Averages()
	b.ReportMetric(avg[experiments.SchemeIAR], "IAR/LB")
	b.ReportMetric(avg[experiments.SchemeDefault], "default/LB")
}

// BenchmarkFig6 regenerates Figure 6 (oracle cost-benefit model).
func BenchmarkFig6(b *testing.B) {
	var res *experiments.FigResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig6(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := res.Averages()
	b.ReportMetric(avg[experiments.SchemeIAR], "IAR/LB")
	b.ReportMetric(avg[experiments.SchemeDefault], "default/LB")
}

// BenchmarkFig7 regenerates Figure 7 (concurrent JIT speedups under IAR).
func BenchmarkFig7(b *testing.B) {
	var res *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig7(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Averages()[16], "speedup-16-cores")
}

// BenchmarkFig8 regenerates Figure 8 (the V8 scheme on two levels).
func BenchmarkFig8(b *testing.B) {
	var res *experiments.FigResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig8(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := res.Averages()
	b.ReportMetric(avg[experiments.SchemeV8], "V8/LB")
	b.ReportMetric(avg[experiments.SchemeIAR], "IAR/LB")
}

// BenchmarkTable2 regenerates the IAR-overhead table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAStarStudy regenerates the §6.2.5 feasibility sweep (3..8 unique
// functions, node budget standing in for the 2 GB heap).
func BenchmarkAStarStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AStarStudy(experiments.AStarOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// loadBench loads a workload once for the micro-benchmarks.
func loadBench(b *testing.B, name string) *dacapo.Workload {
	b.Helper()
	bench, err := dacapo.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	w, err := bench.Load(1)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkIAR measures the scheduling algorithm itself (the quantity of
// Table 2), per workload.
func BenchmarkIAR(b *testing.B) {
	for _, name := range []string{"antlr", "eclipse", "lusearch"} {
		b.Run(name, func(b *testing.B) {
			w := loadBench(b, name)
			model := w.DefaultModel()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.IAR(w.Trace, w.Profile, core.IAROptions{Model: model}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimReplay measures the make-span framework on a static schedule.
func BenchmarkSimReplay(b *testing.B) {
	w := loadBench(b, "jython")
	sched, err := core.IAR(w.Trace, w.Profile, core.IAROptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w.Trace, w.Profile, sched, sim.DefaultConfig(), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJikesPolicy measures the online-policy engine with sampling.
func BenchmarkJikesPolicy(b *testing.B) {
	w := loadBench(b, "jython")
	model := w.DefaultModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.NewJikes(model, w.Profile.NumFuncs(), w.Bench.SamplePeriod)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunPolicy(w.Trace, w.Profile, pol, sim.DefaultConfig(), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGen measures the synthetic trace generator.
func BenchmarkTraceGen(b *testing.B) {
	cfg := trace.GenConfig{
		Name: "bench", NumFuncs: 2000, Length: 250000, Seed: 1,
		ZipfS: 1.4, Phases: 5, CoreFuncs: 200, CoreShare: 0.5, BurstMean: 3,
		WarmupFrac: 0.08, WarmupCoverage: 0.8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLowerBound measures the §5.2 bound computation.
func BenchmarkLowerBound(b *testing.B) {
	w := loadBench(b, "pmd")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LowerBound(w.Trace, w.Profile)
	}
}

// BenchmarkAStarSearch6 measures A* at the paper's six-function feasibility
// frontier.
func BenchmarkAStarSearch6(b *testing.B) {
	tr, p := experiments.AStarInstance(6, 50, 1006)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := astar.Search(tr, p, astar.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIARAblation quantifies the design choices DESIGN.md calls out:
// each variant's normalized make-span is reported as a metric next to its
// running time. "initOnly" is steps 1-2 disabled down to the bare init
// schedule (equivalently, base-level only).
func BenchmarkIARAblation(b *testing.B) {
	w := loadBench(b, "jython")
	model := w.DefaultModel()
	lb := float64(core.ModelLowerBound(w.Trace, w.Profile, model))
	variants := []struct {
		name string
		opts core.IAROptions
		base bool
	}{
		{"full", core.IAROptions{Model: model}, false},
		{"noFillSlack", core.IAROptions{Model: model, DisableFillSlack: true}, false},
		{"noFillGap", core.IAROptions{Model: model, DisableFillGap: true}, false},
		{"initOnly", core.IAROptions{}, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var sched sim.Schedule
			var err error
			for i := 0; i < b.N; i++ {
				if v.base {
					sched = core.SingleLevelBase(w.Trace)
				} else {
					sched, err = core.IAR(w.Trace, w.Profile, v.opts)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			res, err := sim.Run(w.Trace, w.Profile, sched, sim.DefaultConfig(), sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.MakeSpan)/lb, "makespan/LB")
		})
	}
}

// BenchmarkEstimatedModel measures cost-benefit model construction.
func BenchmarkEstimatedModel(b *testing.B) {
	w := loadBench(b, "fop")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile.NewEstimated(w.Profile, profile.DefaultEstimatedConfig(5))
	}
}

// BenchmarkPredictStudy measures the §8 cross-run prediction pipeline on a
// subset of the suite.
func BenchmarkPredictStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PredictStudy(experiments.Options{Benchmarks: []string{"luindex", "antlr"}})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].ByTrainRuns[5], "IAR@5runs/LB")
		}
	}
}

// BenchmarkPriorityStudy measures the §7 queue-discipline comparison.
func BenchmarkPriorityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PriorityStudy(experiments.Options{Benchmarks: []string{"jython"}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVariationStudy measures the §8 execution-variation sweep.
func BenchmarkVariationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.VariationStudy(experiments.Options{Benchmarks: []string{"fop"}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreterStudy measures the §8 interpreter-tier study.
func BenchmarkInterpreterStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InterpreterStudy(experiments.Options{Benchmarks: []string{"luindex"}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIDASearch6 measures IDA* at the six-function frontier for
// comparison with BenchmarkAStarSearch6.
func BenchmarkIDASearch6(b *testing.B) {
	tr, p := experiments.AStarInstance(6, 50, 1006)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := astar.IDASearch(tr, p, astar.IDAOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramCollect measures the call-graph execution walker.
func BenchmarkProgramCollect(b *testing.B) {
	prog, err := program.Generate(program.GenConfig{
		Funcs: 400, Layers: 6, FanOut: 3, LoopMean: 5, BranchProb: 0.6, Seed: 2024,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := program.Collect(prog, program.CollectOptions{MaxCalls: 250000, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictor measures trace prediction from five recorded runs.
func BenchmarkPredictor(b *testing.B) {
	bench, err := dacapo.ByName("antlr")
	if err != nil {
		b.Fatal(err)
	}
	repo := predict.NewRepository()
	for k := 1; k <= 5; k++ {
		w, err := bench.LoadRun(1, k)
		if err != nil {
			b.Fatal(err)
		}
		repo.Add(w.Trace)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Predict(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMTEngine measures the multi-threaded execution engine: four
// threads, shared compile queue, organizer-batched Jikes policy.
func BenchmarkMTEngine(b *testing.B) {
	bench, err := dacapo.ByName("jython")
	if err != nil {
		b.Fatal(err)
	}
	threads, p, err := bench.LoadThreads(1, 4)
	if err != nil {
		b.Fatal(err)
	}
	model := profile.NewEstimated(p, profile.DefaultEstimatedConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := policy.NewJikesOrganizer(model, p.NumFuncs(), bench.SamplePeriod/4, bench.SamplePeriod)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sim.RunPolicyMT(threads, p, pol,
			sim.Config{CompileWorkers: 1, Discipline: sim.FirstCompileFirst}, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
